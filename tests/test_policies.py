"""Base policies P1-P4 and the hybrid selectors."""

import numpy as np
import pytest

from repro.gpu import SimulatedNode, tesla_t10_model
from repro.gpu.clock import TaskGraph
from repro.policies import (
    BaselineHybrid,
    IdealHybrid,
    ModelHybrid,
    Worker,
    estimate_policy_time,
    make_policy,
)
from repro.policies.base import PolicyP1, PolicyP4


@pytest.fixture
def node():
    return SimulatedNode(n_cpus=1, n_gpus=1)


@pytest.fixture
def worker(node):
    return Worker("cpu0", node.gpus[0])


def front(s, rng):
    b = rng.normal(size=(s, s + 4))
    return b @ b.T + s * np.eye(s)


def reference_blocks(f, k):
    l = np.linalg.cholesky(f)
    u = f[k:, k:] - l[k:, :k] @ l[k:, :k].T
    return l[:k, :k], l[k:, :k], u


class TestNumerics:
    @pytest.mark.parametrize("name,atol", [("P1", 1e-10), ("P2", 1e-2), ("P3", 1e-2), ("P4", 1e-2), ("P4c", 1e-2)])
    def test_factor_update_matches_reference(self, name, atol, node, worker, rng):
        f = front(40, rng)
        ref_l1, ref_l2, ref_u = reference_blocks(f, 12)
        pol = make_policy(name)
        res = pol.execute(f.copy(), 12, worker, node)
        assert np.allclose(np.tril(res.l1), ref_l1, atol=atol)
        assert np.allclose(res.l2, ref_l2, atol=atol)
        assert np.allclose(res.u, ref_u, atol=atol)

    def test_p1_is_exact_float64(self, node, worker, rng):
        f = front(30, rng)
        ref = reference_blocks(f, 10)
        res = make_policy("P1").execute(f.copy(), 10, worker, node)
        assert np.allclose(res.l2, ref[1], atol=1e-12)

    def test_gpu_policies_show_fp32_error(self, node, worker, rng):
        # the paper's single-precision offload must actually lose precision
        f = front(60, rng)
        ref = reference_blocks(f, 20)
        res = make_policy("P3").execute(f.copy(), 20, worker, node)
        err = np.abs(res.l2 - ref[1]).max()
        assert 1e-12 < err < 1e-1

    def test_m_zero_root_call(self, node, worker, rng):
        # the root special case the paper highlights (Section IV-D)
        f = front(25, rng)
        for name in ("P1", "P2", "P3", "P4"):
            res = make_policy(name).execute(f.copy(), 25, worker, node)
            assert res.u.size == 0
            assert np.allclose(
                res.l1 @ res.l1.T, f, atol=1e-2 if name != "P1" else 1e-9
            )

    def test_gpu_policy_requires_gpu_worker(self, node, rng):
        cpu_only = Worker("cpu0", None)
        with pytest.raises(ValueError):
            make_policy("P3").execute(front(10, rng), 5, cpu_only, node)

    def test_p1_runs_without_gpu(self, rng):
        node = SimulatedNode(n_cpus=1, n_gpus=0)
        w = Worker("cpu0", None)
        res = make_policy("P1").execute(front(10, rng), 5, w, node)
        assert res.elapsed > 0


class TestPlans:
    def test_p1_tasks_all_on_cpu(self, worker, node):
        g = TaskGraph()
        make_policy("P1").plan(20, 10, worker, node.model, g)
        assert {t.engine for t in g.tasks} == {"cpu0"}
        assert [t.category for t in g.tasks] == ["potrf", "trsm", "syrk"]

    def test_p2_offloads_only_syrk(self, worker, node):
        g = TaskGraph()
        make_policy("P2").plan(20, 10, worker, node.model, g)
        by_cat = {t.category: t.engine for t in g.tasks}
        assert by_cat["potrf"] == "cpu0"
        assert by_cat["trsm"] == "cpu0"
        assert by_cat["syrk"] == "gpu0.compute"

    def test_p3_overlaps_upload_with_potrf(self, worker, node):
        pol = make_policy("P3")
        g = TaskGraph()
        plan = pol.plan(400, 200, worker, node.model, g)
        from repro.gpu.clock import schedule_graph
        schedule_graph(g)
        h2d = plan.roles["h2d_l2"]
        potrf = plan.roles["potrf"]
        # both start at (essentially) the same time: overlap
        assert h2d.start < potrf.end

    def test_p3_d2h_under_syrk(self, worker, node):
        pol = make_policy("P3")
        g = TaskGraph()
        plan = pol.plan(400, 200, worker, node.model, g)
        from repro.gpu.clock import schedule_graph
        schedule_graph(g)
        assert plan.roles["d2h_l2"].start < plan.roles["syrk"].end

    def test_p4_one_task_per_kernel(self, worker, node):
        g = TaskGraph()
        pol = PolicyP4(panel_width=8)
        plan = pol.plan(16, 16, worker, node.model, g)
        kernels = [t for t in g.tasks if t.engine == "gpu0.compute"]
        from repro.gpu.cublas import panel_kernel_sequence
        assert len(kernels) == len(panel_kernel_sequence(32, 16, 8))

    def test_p4_copy_optimized_moves_less_data(self, worker, node):
        g1, g2 = TaskGraph(), TaskGraph()
        make_policy("P4").plan(100, 100, worker, node.model, g1)
        make_policy("P4c").plan(100, 100, worker, node.model, g2)
        copy1 = sum(t.duration for t in g1.tasks if t.category == "copy")
        copy2 = sum(t.duration for t in g2.tasks if t.category == "copy")
        assert copy2 < copy1

    def test_m_zero_plans(self, worker, node):
        for name in ("P1", "P2", "P3", "P4"):
            g = TaskGraph()
            plan = make_policy(name).plan(0, 15, worker, node.model, g)
            assert plan.final is g.tasks[-1]


class TestEstimates:
    def test_estimate_positive_and_deterministic(self, model):
        t1 = estimate_policy_time(make_policy("P3"), 100, 50, model)
        t2 = estimate_policy_time(make_policy("P3"), 100, 50, model)
        assert t1 == t2 > 0

    def test_small_calls_favor_cpu(self, model):
        t = {
            n: estimate_policy_time(make_policy(n), 20, 8, model)
            for n in ("P1", "P2", "P3", "P4")
        }
        assert min(t, key=t.get) == "P1"

    def test_large_calls_favor_gpu(self, model):
        t = {
            n: estimate_policy_time(make_policy(n), 4000, 2000, model)
            for n in ("P1", "P2", "P3", "P4")
        }
        assert min(t, key=t.get) in ("P3", "P4")

    def test_huge_root_calls_favor_p4(self, model):
        # near the root k is comparable to m (or m = 0): potrf dominates
        # and P4's on-device blocked potrf wins (paper Table V / Fig. 12)
        t = {
            n: estimate_policy_time(make_policy(n), 0, 6000, model)
            for n in ("P1", "P2", "P3", "P4")
        }
        assert min(t, key=t.get) == "P4"

    def test_cold_pools_cost_more(self, model):
        warm = estimate_policy_time(make_policy("P3"), 200, 100, model)
        cold = estimate_policy_time(
            make_policy("P3"), 200, 100, model, warm_pools=False
        )
        assert cold > warm


class TestHybrids:
    def test_baseline_thresholds(self):
        bh = BaselineHybrid()
        assert bh.choose(10, 5) == "P1"          # tiny
        assert bh.choose(300, 60) == "P2"        # ~1.2e7 ops
        assert bh.choose(2000, 300) == "P3"      # ~1.4e9 ops
        assert bh.choose(60000, 20000) == "P4"   # > 9e10 ops

    def test_baseline_validates_thresholds(self):
        with pytest.raises(ValueError):
            BaselineHybrid(thresholds=(10.0, 5.0, 20.0))

    def test_resolve_falls_back_without_gpu(self):
        bh = BaselineHybrid()
        cpu_only = Worker("cpu0", None)
        pol = bh.resolve(60000, 20000, cpu_only)
        assert pol.name == "P1"

    def test_resolve_counts_selections(self, worker):
        bh = BaselineHybrid()
        bh.resolve(10, 5, worker)
        bh.resolve(10, 5, worker)
        bh.resolve(2000, 300, worker)
        assert bh.selection_counts == {"P1": 2, "P3": 1}

    def test_ideal_matches_bruteforce(self, model):
        ih = IdealHybrid(model)
        for m, k in [(10, 5), (500, 100), (0, 4000), (3000, 800)]:
            times = ih.policy_times(m, k)
            assert ih.choose(m, k) == min(times, key=times.get)

    def test_ideal_caches(self, model):
        ih = IdealHybrid(model)
        ih.choose(10, 5)
        assert (10, 5) in ih._cache

    def test_model_hybrid_delegates_to_classifier(self):
        class FakeClf:
            class_names = ("P1", "P4")

            def predict_one(self, m, k):
                return "P4" if m * k > 1000 else "P1"

        mh = ModelHybrid(FakeClf())
        assert mh.choose(100, 100) == "P4"
        assert mh.choose(2, 2) == "P1"

    def test_model_hybrid_rejects_unknown_classes(self):
        class BadClf:
            class_names = ("P9",)

        with pytest.raises(ValueError):
            ModelHybrid(BadClf())

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("P7")
