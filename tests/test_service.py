"""The serving layer: keys, cache, batching, metrics, and the service."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d
from repro.matrices.csc import CSCMatrix, COOMatrix
from repro.multifrontal import SparseCholeskySolver
from repro.policies.base import Policy
from repro.service import (
    BatchPlan,
    FactorizationCache,
    LatencyHistogram,
    ServiceMetrics,
    SolverService,
    matrix_key,
    pattern_key,
    values_key,
)
from repro.service.cache import symbolic_nbytes
from repro.symbolic import symbolic_factorize


def scaled(a: CSCMatrix, c: float) -> CSCMatrix:
    """Same pattern, values scaled by ``c`` (SPD preserved for c > 0)."""
    return CSCMatrix(a.shape, a.indptr, a.indices, a.data * c, check=False)


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_same_pattern_different_values_share_pattern_key(self, lap2d_small):
        b = scaled(lap2d_small, 3.0)
        assert pattern_key(lap2d_small) == pattern_key(b)
        assert values_key(lap2d_small) != values_key(b)

    def test_identical_matrices_share_both_keys(self, lap2d_small):
        b = lap2d_small.copy()
        assert pattern_key(lap2d_small) == pattern_key(b)
        assert values_key(lap2d_small) == values_key(b)

    def test_permuted_duplicate_triplets_hash_equal(self, rng):
        # the same matrix assembled twice: shuffled triplet order, and with
        # entries split into duplicate contributions that sum back
        rows = np.array([0, 1, 2, 1, 2, 0])
        cols = np.array([0, 1, 2, 0, 1, 1])
        vals = np.array([4.0, 5.0, 6.0, 1.0, 1.5, 1.0])
        a = COOMatrix(3, 3, rows, cols, vals).to_csc()

        order = rng.permutation(rows.size)
        split = rng.uniform(0.25, 0.75, size=rows.size)
        rows2 = np.concatenate([rows[order], rows[order]])
        cols2 = np.concatenate([cols[order], cols[order]])
        vals2 = np.concatenate(
            [vals[order] * split[order], vals[order] * (1 - split[order])]
        )
        b = COOMatrix(3, 3, rows2, cols2, vals2).to_csc()

        assert pattern_key(a) == pattern_key(b)
        assert values_key(a) == values_key(b)

    def test_lower_and_full_storage_hash_equal(self, lap2d_small):
        lower = lap2d_small.lower_triangle()
        key_full, _ = matrix_key(lap2d_small)
        key_lower, canonical = matrix_key(lower)
        assert key_full == key_lower
        assert canonical.is_structurally_symmetric()

    def test_different_patterns_differ(self):
        assert pattern_key(grid_laplacian_2d(6, 6)) != pattern_key(
            grid_laplacian_2d(6, 7)
        )


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestCache:
    def test_tiered_lookup(self, lap2d_small, sf_lap3d):
        cache = FactorizationCache(max_bytes=1 << 30)
        assert cache.lookup("s1", "n1").tier == "miss"
        cache.put_symbolic("s1", sf_lap3d)
        look = cache.lookup("s1", "n1")
        assert look.tier == "symbolic" and look.symbolic is sf_lap3d
        factor = (
            SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1")
            .factorize()
            .factor
        )
        cache.put_numeric("n1", factor)
        look = cache.lookup("s1", "n1")
        assert look.tier == "numeric" and look.numeric is factor
        assert cache.stats["numeric_hits"] == 1
        assert cache.stats["symbolic_hits"] == 1
        assert cache.stats["misses"] == 1

    def test_lru_eviction_at_byte_budget(self, sf_lap3d):
        cache = FactorizationCache(max_bytes=250)
        cache.put_symbolic("a", sf_lap3d, nbytes=100)
        cache.put_symbolic("b", sf_lap3d, nbytes=100)
        # touch "a" so "b" becomes the LRU entry
        assert cache.get_symbolic("a") is not None
        cache.put_symbolic("c", sf_lap3d, nbytes=100)
        assert cache.get_symbolic("b") is None          # evicted
        assert cache.get_symbolic("a") is not None      # survived (recently used)
        assert cache.get_symbolic("c") is not None
        assert cache.stats["evictions"] == 1
        assert cache.stored_bytes == 200

    def test_oversize_entry_rejected(self, sf_lap3d):
        cache = FactorizationCache(max_bytes=100)
        assert not cache.put_symbolic("big", sf_lap3d, nbytes=1000)
        assert len(cache) == 0
        assert cache.stats["rejected_oversize"] == 1

    def test_reinsert_updates_bytes(self, sf_lap3d):
        cache = FactorizationCache(max_bytes=1000)
        cache.put_symbolic("a", sf_lap3d, nbytes=100)
        cache.put_symbolic("a", sf_lap3d, nbytes=300)
        assert cache.stored_bytes == 300
        assert len(cache) == 1

    def test_default_size_estimate_positive(self, sf_lap3d):
        assert symbolic_nbytes(sf_lap3d) > 0


# ----------------------------------------------------------------------
# solver primitives the cache tiers rely on
# ----------------------------------------------------------------------
class TestSymbolicReuse:
    def test_refactorize_with_new_values(self, lap2d_small):
        solver = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1")
        solver.analyze().factorize()
        sf = solver.symbolic
        b = np.ones(lap2d_small.n_rows)

        a2 = scaled(lap2d_small, 2.5)
        solver.refactorize(a2)
        assert solver.symbolic is sf                   # analysis reused
        x = solver.solve(b, refine=False)
        ref = SparseCholeskySolver(a2, ordering="amd", policy="P1").solve(
            b, refine=False
        )
        np.testing.assert_allclose(x, ref, rtol=1e-10)

    def test_refactorize_raw_values_array(self, lap2d_small):
        solver = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1")
        solver.analyze().factorize()
        solver.refactorize(solver.a.data * 4.0)
        b = np.ones(lap2d_small.n_rows)
        x = solver.solve(b, refine=False)
        ref = SparseCholeskySolver(
            scaled(lap2d_small, 4.0), ordering="amd", policy="P1"
        ).solve(b, refine=False)
        np.testing.assert_allclose(x, ref, rtol=1e-10)

    def test_refactorize_rejects_wrong_shape(self, lap2d_small):
        solver = SparseCholeskySolver(lap2d_small, policy="P1")
        with pytest.raises(ValueError):
            solver.refactorize(np.ones(3))

    def test_from_symbolic_skips_analysis(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        solver = SparseCholeskySolver.from_symbolic(
            lap2d_small, sf, policy="P1"
        )
        assert solver.symbolic is sf
        b = np.ones(lap2d_small.n_rows)
        x = solver.solve(b, refine=False)
        ref = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1").solve(
            b, refine=False
        )
        np.testing.assert_allclose(x, ref, rtol=1e-12)

    def test_from_symbolic_rejects_wrong_size(self, lap2d_small, sf_lap3d):
        with pytest.raises(ValueError):
            SparseCholeskySolver.from_symbolic(lap2d_small, sf_lap3d)


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class TestServiceTiers:
    def test_correctness_and_tier_progression(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        ref = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1").solve(
            b, refine=False
        )
        with SolverService(n_workers=1, policy="P1", ordering="amd") as svc:
            out1 = svc.solve(lap2d_small, b)
            assert out1.tier == "miss"
            np.testing.assert_array_equal(out1.x, ref)

            # warm full hit: straight to the solves, zero factorizations
            before = svc.metrics.counter("numeric_factorizations")
            out2 = svc.solve(lap2d_small.copy(), b)
            assert out2.tier == "numeric"
            assert svc.metrics.counter("numeric_factorizations") == before
            np.testing.assert_array_equal(out2.x, ref)

            # same pattern, new values: symbolic hit, one new factorization
            out3 = svc.solve(scaled(lap2d_small, 2.0), b)
            assert out3.tier == "symbolic"
            assert svc.metrics.counter("numeric_factorizations") == before + 1
            np.testing.assert_allclose(out3.x, ref / 2.0, rtol=1e-12)
        rep = svc.report()
        assert rep["cache"]["numeric_hits"] == 1
        assert rep["cache"]["symbolic_hits"] == 1
        assert rep["counters"]["completed"] == 3

    def test_warm_hit_rate_on_repeated_stream(self, lap2d_small):
        """The acceptance-criterion scenario: a repeated-pattern stream
        reaches >= 80% symbolic-tier hit rate."""
        variants = [scaled(lap2d_small, 1.0 + 0.5 * v) for v in range(3)]
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1") as svc:
            for i in range(30):
                svc.solve(variants[i % 3], b)
        assert svc.cache.pattern_hit_rate >= 0.8
        # only the three value-variants were ever factored
        assert svc.metrics.counter("numeric_factorizations") == 3

    def test_multicolumn_rhs(self, lap2d_small, rng):
        b = rng.normal(size=(lap2d_small.n_rows, 5))
        with SolverService(n_workers=1, policy="P1") as svc:
            out = svc.solve(lap2d_small, b)
        ref = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1")
        ref.factorize()
        from repro.multifrontal.solve import solve_factored

        np.testing.assert_array_equal(out.x, solve_factored(ref.factor, b))

    def test_refined_request(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P3") as svc:
            out = svc.solve(lap2d_small, b, refine=True)
        r = b - lap2d_small.matvec(out.x)
        assert np.abs(r).max() / np.abs(b).max() < 1e-10

    def test_submit_after_shutdown_raises(self, lap2d_small):
        svc = SolverService(n_workers=1, policy="P1")
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit(lap2d_small, np.ones(lap2d_small.n_rows))


class TestServiceConcurrency:
    def test_concurrent_submissions_match_serial(self):
        mats = [grid_laplacian_2d(6 + p, 7 + p) for p in range(4)]
        rhs = [np.arange(1.0, m.n_rows + 1.0) for m in mats]
        serial = [
            SparseCholeskySolver(m, ordering="amd", policy="P1").solve(
                b, refine=False
            )
            for m, b in zip(mats, rhs)
        ]

        results: dict[tuple[int, int], np.ndarray] = {}
        errors: list[BaseException] = []
        # batching off: a blocked multi-RHS solve rounds differently from a
        # per-vector solve, and this test demands bitwise equality vs serial
        with SolverService(
            n_workers=4, policy="P1", ordering="amd", max_batch=1
        ) as svc:
            def client(tid: int):
                try:
                    reqs = [
                        (i, svc.submit(mats[i], rhs[i]))
                        for i in range(len(mats))
                    ]
                    for i, r in reqs:
                        out = r.result(timeout=120)
                        with lock:
                            results[(tid, i)] = out.x
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            lock = threading.Lock()
            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert len(results) == 16
        for (tid, i), x in results.items():
            np.testing.assert_array_equal(x, serial[i])

    def test_inflight_coalescing_avoids_duplicate_factorizations(self):
        # many concurrent requests for one cold matrix: exactly one
        # factorization thanks to in-flight coalescing
        a = grid_laplacian_2d(12, 12)
        b = np.ones(a.n_rows)
        with SolverService(n_workers=4, policy="P1", max_batch=1) as svc:
            reqs = [svc.submit(a, b) for _ in range(8)]
            outs = [r.result(timeout=120) for r in reqs]
        assert svc.metrics.counter("numeric_factorizations") == 1
        for o in outs:
            np.testing.assert_array_equal(o.x, outs[0].x)


class TestServiceDeadlines:
    def test_expired_request_times_out_not_dropped(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1") as svc:
            req = svc.submit(lap2d_small, b, timeout=-1.0)  # already expired
            with pytest.raises(TimeoutError):
                req.result(timeout=60)
        assert svc.metrics.counter("timeouts") == 1
        assert req.done()

    def test_result_wait_timeout(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        svc = SolverService(n_workers=1, policy="P1")
        try:
            # a request that is genuinely processed still honors result()'s
            # own wait timeout semantics
            out = svc.submit(lap2d_small, b).result(timeout=120)
            assert out.x.shape == b.shape
        finally:
            svc.shutdown()


class _ExplodingPolicy(Policy):
    """Simulated-GPU policy that always fails at plan time."""

    name = "boom"
    needs_gpu = True

    def plan(self, m, k, worker, model, graph, deps=()):
        raise RuntimeError("injected device failure")

    def apply(self, front, k, worker):  # pragma: no cover - never reached
        raise AssertionError


class TestServiceDegradation:
    def test_gpu_failure_falls_back_to_p1(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        ref = SparseCholeskySolver(lap2d_small, ordering="amd", policy="P1").solve(
            b, refine=False
        )
        with SolverService(
            n_workers=1, policy=_ExplodingPolicy(), ordering="amd"
        ) as svc:
            out = svc.solve(lap2d_small, b)
        assert out.degraded
        np.testing.assert_array_equal(out.x, ref)
        assert svc.metrics.counter("degraded") == 1
        # the degraded factor is not published under the failing policy's key
        assert svc.cache.stats["numeric_hits"] == 0

    def test_cpu_policy_failure_is_fatal(self, lap2d_small):
        # a genuinely broken problem on the CPU-only policy propagates
        from repro.dense.kernels import NotPositiveDefiniteError

        indefinite = CSCMatrix(
            lap2d_small.shape,
            lap2d_small.indptr,
            lap2d_small.indices,
            -lap2d_small.data,
            check=False,
        )
        with SolverService(n_workers=1, policy="P1") as svc:
            req = svc.submit(indefinite, np.ones(lap2d_small.n_rows))
            with pytest.raises(NotPositiveDefiniteError):
                req.result(timeout=120)


class TestServiceBatching:
    def test_batch_plan_roundtrip(self, rng):
        class Req:
            def __init__(self, b):
                self.b = b

        reqs = [Req(rng.normal(size=8)), Req(rng.normal(size=(8, 3))),
                Req(rng.normal(size=8))]
        plan = BatchPlan.build(reqs, 8)
        assert plan.nrhs == 5
        x = plan.block * 2.0
        outs = list(plan.scatter(x))
        assert outs[0][1].shape == (8,)
        assert outs[1][1].shape == (8, 3)
        for req, xr in outs:
            np.testing.assert_array_equal(
                xr, (np.asarray(req.b) * 2.0).reshape(xr.shape)
            )

    def test_queued_same_factor_requests_are_aggregated(self):
        blocker = grid_laplacian_2d(20, 20)      # keeps the lone worker busy
        shared = grid_laplacian_2d(9, 9)
        nb = shared.n_rows
        with SolverService(n_workers=1, policy="P1") as svc:
            first = svc.submit(blocker, np.ones(blocker.n_rows))
            batchers = [
                svc.submit(shared, np.full(nb, float(i + 1)))
                for i in range(4)
            ]
            first.result(timeout=120)
            outs = [r.result(timeout=120) for r in batchers]

        ref = SparseCholeskySolver(shared, ordering="amd", policy="P1").solve(
            np.ones(nb), refine=False
        )
        for i, o in enumerate(outs):
            np.testing.assert_allclose(o.x, ref * (i + 1), rtol=1e-9, atol=1e-12)
        # all four shared-pattern requests were in flight before the worker
        # got to them, so at least the tail rode the anchor's solve call
        assert max(o.batch_size for o in outs) >= 2
        assert svc.metrics.counter("batched_requests") >= 1
        # one factorization for the blocker, one for the shared pattern
        assert svc.metrics.counter("numeric_factorizations") == 2


class TestMetrics:
    def test_histogram_percentiles(self):
        h = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 100):
            h.record(ms * 1e-3)
        assert h.count == 10
        assert h.percentile(50) == pytest.approx(1e-3, rel=0.5)
        assert h.percentile(95) == pytest.approx(0.1, rel=0.5)
        assert h.summary()["max"] == pytest.approx(0.1)

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.percentile(50) == 0.0
        assert h.summary()["count"] == 0

    def test_counters_and_gauges(self):
        m = ServiceMetrics()
        m.incr("x")
        m.incr("x", 4)
        assert m.counter("x") == 5
        m.gauge("depth", 3)
        m.gauge("depth", 1)
        rep = m.report()
        assert rep["gauges"]["depth"] == 1
        assert rep["gauges"]["depth_max"] == 3
        json.loads(m.to_json())

    def test_chrome_trace_spans(self, tmp_path):
        m = ServiceMetrics()
        m.span("req1:solve", "solve", "worker0", 0.0, 0.5)
        m.span("req2:factorize", "factorize", "worker1", 0.1, 0.4)
        path = tmp_path / "trace.json"
        m.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names == {"worker0", "worker1"}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 2

    def test_service_report_shape(self, lap2d_small):
        with SolverService(n_workers=1, policy="P1") as svc:
            svc.solve(lap2d_small, np.ones(lap2d_small.n_rows))
        rep = svc.report()
        assert {"counters", "gauges", "latency", "cache"} <= set(rep)
        assert "total" in rep["latency"]
        assert rep["latency"]["total"]["count"] == 1
        assert rep["cache"]["entries"] == 2    # one symbolic + one numeric


class TestBackendSelection:
    def test_dynamic_backend_solves_correctly(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=2, policy="P1",
                           backend="dynamic") as svc:
            out = svc.solve(lap2d_small, b)
        assert np.abs(lap2d_small.matvec(out.x) - b).max() < 1e-10

    def test_backends_share_cached_factors(self, lap2d_small):
        # factors are bit-identical across backends, so a cache populated
        # by one backend serves the others
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1", backend="static") as svc:
            first = svc.solve(lap2d_small, b)
            second = svc.solve(lap2d_small, b)
        assert first.tier == "miss"
        assert second.tier in ("numeric", "batched")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SolverService(n_workers=1, backend="bogus")


class TestDynamicFaultDegradation:
    """Regression: a fault-degraded dynamic factorization completes without
    raising, but its factor is partially P1-produced — it must be flagged
    degraded and must NOT be cached under the non-degraded policy key."""

    def _service(self, **kwargs):
        from repro.runtime import FaultInjector

        return SolverService(
            n_workers=1, policy="P4", ordering="amd", backend="dynamic",
            faults=FaultInjector(kernel_failure_rate=1.0), **kwargs,
        )

    def test_degraded_dynamic_run_is_flagged(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with self._service() as svc:
            out = svc.solve(lap2d_small, b)
        assert out.degraded
        assert svc.metrics.counter("degraded") == 1
        # still a correct solve, just on the CPU path
        assert np.abs(lap2d_small.matvec(out.x) - b).max() < 1e-8

    def test_degraded_factor_not_cached_under_clean_key(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with self._service() as svc:
            first = svc.solve(lap2d_small, b)
            second = svc.solve(lap2d_small, b)
        assert first.degraded and second.degraded
        # the second identical request must NOT have hit the numeric tier:
        # the degraded factor was never published under the P4 key
        assert second.tier != "numeric"
        assert svc.cache.stats["numeric_hits"] == 0
        assert svc.metrics.counter("numeric_factorizations") == 2

    def test_clean_dynamic_run_still_caches(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P4", ordering="amd",
                           backend="dynamic") as svc:
            first = svc.solve(lap2d_small, b)
            second = svc.solve(lap2d_small, b)
        assert not first.degraded
        assert second.tier in ("numeric", "batched")

    def test_faults_require_dynamic_backend(self):
        from repro.runtime import FaultInjector

        with pytest.raises(ValueError, match="dynamic"):
            SolverService(
                n_workers=1, backend="serial",
                faults=FaultInjector(kernel_failure_rate=0.5),
            )


class TestShadowVerification:
    def test_sampled_rate_counts_checks(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1", ordering="amd",
                           shadow_verify_rate=0.5) as svc:
            for _ in range(4):
                svc.solve(lap2d_small, b)
        # deterministic accumulator: exactly every 2nd request is checked
        assert svc.metrics.counter("shadow_checks") == 2
        assert svc.metrics.counter("shadow_mismatches") == 0

    def test_full_rate_checks_every_request(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1", ordering="amd",
                           shadow_verify_rate=1.0) as svc:
            for _ in range(3):
                svc.solve(lap2d_small, b)
        assert svc.metrics.counter("shadow_checks") == 3
        assert svc.metrics.counter("shadow_mismatches") == 0

    def test_zero_rate_never_checks(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1", ordering="amd") as svc:
            svc.solve(lap2d_small, b)
        assert svc.metrics.counter("shadow_checks") == 0

    def test_corrupted_cached_factor_is_detected(self, lap2d_small):
        # poison the numeric cache entry, then let the shadow check compare
        # the served (cached) factor against a fresh reference
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1", ordering="amd",
                           shadow_verify_rate=1.0) as svc:
            svc.solve(lap2d_small, b)          # populate the cache
            key = matrix_key(lap2d_small)[0]
            num_key = f"{key.values}|ord=amd|pol=p1"
            entry = svc.cache.lookup("zzz-no-such-pattern", num_key)
            assert entry.tier == FactorizationCache.NUMERIC
            entry.numeric.panels[0][0, 0] *= 1.0 + 1e-3
            svc.solve(lap2d_small, b)          # numeric hit on poisoned entry
        assert svc.metrics.counter("shadow_mismatches") >= 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="shadow_verify_rate"):
            SolverService(n_workers=1, shadow_verify_rate=1.5)


# ----------------------------------------------------------------------
# health surfaces (serving-layer admission signals)
# ----------------------------------------------------------------------
class TestHealth:
    def test_service_health_fields(self, lap2d_small):
        with SolverService(n_workers=2, policy="P1") as svc:
            svc.solve(lap2d_small, np.ones(lap2d_small.n_rows))
            h = svc.health()
            assert h["status"] == "ok" and h["accepting"] is True
            assert h["workers"] == 2
            assert h["cache_entries"] >= 1
            assert 0.0 < h["cache_utilization"] <= 1.0
            assert h["cache_bytes"] <= h["cache_max_bytes"]
        assert svc.health()["status"] == "stopped"
        assert svc.health()["accepting"] is False

    def test_fleet_health_rolls_up_shards(self, lap2d_small):
        from repro.cluster.fleet import ShardedSolverService

        fleet = ShardedSolverService(3, n_workers_per_node=1, policy="P1")
        try:
            fleet.solve(lap2d_small, np.ones(lap2d_small.n_rows))
            h = fleet.health()
            assert h["status"] == "ok"
            assert len(h["nodes"]) == 3
            assert all(n["up"] for n in h["nodes"])
            assert h["cache_bytes"] == sum(
                n["cache_bytes"] for n in h["nodes"]
            )
        finally:
            fleet.shutdown()

    def test_fleet_health_degraded_when_a_node_is_down(self, lap2d_small):
        from repro.cluster.fleet import ShardedSolverService

        fleet = ShardedSolverService(2, n_workers_per_node=1, policy="P1")
        try:
            fleet.router.mark_down(0)
            h = fleet.health()
            assert h["status"] == "degraded"
            assert [n["up"] for n in h["nodes"]] == [False, True]
        finally:
            fleet.shutdown()


# ----------------------------------------------------------------------
# metrics exposition (names are a monitoring contract)
# ----------------------------------------------------------------------
class TestMetricsExposition:
    def test_snapshot_names_are_stable(self):
        """Downstream dashboards key on these prefixes; renaming them is
        a breaking change (and RPL040 statically pins literal names)."""
        m = ServiceMetrics()
        m.incr("submitted")
        m.gauge("queue_depth", 3)
        m.observe("total", 0.25)
        snap = m.snapshot()
        assert snap["counter.submitted"] == 1
        assert snap["gauge.queue_depth"] == 3
        assert snap["gauge.queue_depth_max"] == 3
        assert snap["latency.total.count"] == 1
        assert snap["spans.count"] == 0
        assert list(snap) == sorted(snap)
        prefixes = {name.split(".", 1)[0] for name in snap}
        assert prefixes <= {"counter", "gauge", "latency", "spans"}

    def test_render_text_one_line_per_instrument(self):
        m = ServiceMetrics()
        m.incr("completed", 2)
        text = m.render_text()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "counter.completed 2" in lines
        for line in lines:
            name, _, value = line.partition(" ")
            assert name and value
        # rendering is itself deterministic
        assert m.render_text() == text

    def test_snapshot_matches_report_counters(self, lap2d_small):
        with SolverService(n_workers=1, policy="P1") as svc:
            svc.solve(lap2d_small, np.ones(lap2d_small.n_rows))
        snap = svc.metrics.snapshot()
        rep = svc.report()
        for name, value in rep["counters"].items():
            assert snap[f"counter.{name}"] == value


# ----------------------------------------------------------------------
# deadline regression: a timed-out request must never warm the cache
# ----------------------------------------------------------------------
class TestTimeoutCacheIsolation:
    def test_timed_out_request_is_never_cached(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        with SolverService(n_workers=1, policy="P1") as svc:
            req = svc.submit(lap2d_small, b, timeout=-1.0)
            with pytest.raises(TimeoutError):
                req.result(timeout=60)
            assert len(svc.cache) == 0      # expiry preceded factorization
            # the same matrix later is a clean miss, not a stale hit
            out = svc.solve(lap2d_small, b)
            assert out.tier == "miss"
            assert svc.metrics.counter("timeouts") == 1
