"""Framework and per-rule tests for ``repro.lint``.

Each rule gets a positive fixture (the smell, must fire) and a negative
fixture (the sanctioned idiom, must stay silent); the framework tests
cover inline suppressions, the baseline round-trip, and the output
formats.  Fixtures are written to a temp tree and the checkers are
pointed at them through :class:`LintConfig` scope overrides.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    all_rules,
    discover_files,
    render,
    run_lint,
)
from repro.lint.core import Rule, SourceFile


# ----------------------------------------------------------------------
# fixture machinery
# ----------------------------------------------------------------------
def lint_source(
    tmp_path: Path,
    source: str,
    *,
    module: str = "fixmod",
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
):
    """Lint one fixture module with every checker; returns LintResult."""
    path = tmp_path / f"{module.replace('.', '_')}.py"
    path.write_text(textwrap.dedent(source))
    cfg = config or LintConfig()
    files, errors = discover_files([path])
    assert not errors
    # discovery derives the module name from the path; force the name
    # the scope override expects
    files[0].module = module
    from repro.lint.checkers import all_checkers
    from repro.lint.core import Finding

    raw: list[Finding] = []
    for checker in all_checkers():
        raw.extend(checker.check(files, cfg))
    raw.sort(key=Finding.sort_key)

    from repro.lint.runner import LintResult

    result = LintResult(files_checked=1)
    by_path = {str(files[0].path): files[0]}
    for f in raw:
        if files[0].is_suppressed(f):
            result.suppressed.append(f)
        elif baseline is not None and baseline.contains(f, by_path):
            result.baselined.append(f)
        else:
            result.findings.append(f)
    return result


def rule_ids(result) -> list[str]:
    return [f.rule_id for f in result.findings]


CONC = LintConfig(concurrency_modules=("fixmod",))
DET = LintConfig(deterministic_modules=("fixmod",))
KEYS = LintConfig(key_modules=("fixmod",))


# ----------------------------------------------------------------------
# RPL001 lock-order cycles
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_positive_cycle(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.b:
                        with self.a:
                            pass
        """, config=CONC)
        assert "RPL001" in rule_ids(res)

    def test_negative_consistent_order(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """, config=CONC)
        assert "RPL001" not in rule_ids(res)

    def test_transitive_cycle_through_call(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def helper(self):
                    with self.a:
                        pass

                def one(self):
                    with self.b:
                        self.helper()

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """, config=CONC)
        assert "RPL001" in rule_ids(res)


# ----------------------------------------------------------------------
# RPL002 blocking call under lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_positive_sleep_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self):
                    with self.lock:
                        time.sleep(1.0)
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_positive_expensive_call_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            from somewhere import factorize

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self, a):
                    with self.lock:
                        return factorize(a)
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_negative_sleep_outside_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self):
                    with self.lock:
                        x = 1
                    time.sleep(1.0)
                    return x
        """, config=CONC)
        assert "RPL002" not in rule_ids(res)

    def test_negative_condition_wait_is_exempt(self, tmp_path):
        # Condition.wait releases the lock it waits on: not blocking
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.cond = threading.Condition()

                def work(self):
                    with self.cond:
                        self.cond.wait(1.0)
        """, config=CONC)
        assert "RPL002" not in rule_ids(res)

    def test_positive_foreign_wait_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.event = threading.Event()

                def work(self):
                    with self.lock:
                        self.event.wait()
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_positive_transitive_blocking(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def slow(self):
                    time.sleep(0.5)

                def work(self):
                    with self.lock:
                        self.slow()
        """, config=CONC)
        assert "RPL002" in rule_ids(res)


# ----------------------------------------------------------------------
# RPL003 callback under lock
# ----------------------------------------------------------------------
class TestCallbackUnderLock:
    def test_positive_event_set_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.done = threading.Event()

                def finish(self):
                    with self.lock:
                        self.done.set()
        """, config=CONC)
        assert "RPL003" in rule_ids(res)

    def test_positive_factory_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self, factory):
                    self.lock = threading.Lock()
                    self.node_factory = factory

                def build(self):
                    with self.lock:
                        return self.node_factory()
        """, config=CONC)
        assert "RPL003" in rule_ids(res)

    def test_negative_set_outside_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.done = threading.Event()

                def finish(self):
                    with self.lock:
                        x = 1
                    self.done.set()
                    return x
        """, config=CONC)
        assert "RPL003" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL010/011/012 determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_positive_wall_clock(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=DET)
        assert "RPL010" in rule_ids(res)

    def test_positive_bare_import_wall_clock(self, tmp_path):
        res = lint_source(tmp_path, """
            from time import perf_counter

            def stamp():
                return perf_counter()
        """, config=DET)
        assert "RPL010" in rule_ids(res)

    def test_negative_out_of_scope_module(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=LintConfig(deterministic_modules=("other.module",)))
        assert "RPL010" not in rule_ids(res)

    def test_positive_unseeded_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
        """, config=DET)
        assert "RPL011" in rule_ids(res)

    def test_positive_legacy_global_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw():
                return np.random.rand(3)
        """, config=DET)
        assert "RPL011" in rule_ids(res)

    def test_negative_seeded_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).random()
        """, config=DET)
        assert "RPL011" not in rule_ids(res)

    def test_positive_set_iteration(self, tmp_path):
        res = lint_source(tmp_path, """
            def weird(xs):
                pending = {str(x) for x in xs}
                return [p for p in pending]
        """, config=DET)
        assert "RPL012" in rule_ids(res)

    def test_negative_sorted_set_iteration(self, tmp_path):
        res = lint_source(tmp_path, """
            def stable(xs):
                pending = {str(x) for x in xs}
                return [p for p in sorted(pending)]
        """, config=DET)
        assert "RPL012" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL020 allocator ownership
# ----------------------------------------------------------------------
class TestAllocatorLeak:
    def test_positive_second_acquire_unprotected(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, n):
                a = gpu.device_pool.request(n)
                b = gpu.pinned_pool.request(n)
                return a + b
        """)
        assert "RPL020" in rule_ids(res)

    def test_positive_raise_with_outstanding(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, n):
                cost = gpu.device_pool.request(n)
                if n > 100:
                    raise ValueError("too big")
                return cost
        """)
        assert "RPL020" in rule_ids(res)

    def test_positive_fall_through_release(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                cost = gpu.device_pool.request(n)
                result = work(cost)
                gpu.device_pool.release(n)
                return result
        """)
        assert "RPL020" in rule_ids(res)

    def test_negative_try_finally_release(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                cost = gpu.device_pool.request(n)
                try:
                    return work(cost)
                finally:
                    gpu.device_pool.release(n)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_rollback_then_reraise(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, d, p):
                cost = gpu.device_pool.request(d)
                try:
                    cost += gpu.pinned_pool.request(p)
                except BaseException:
                    gpu.device_pool.release(d)
                    raise
                return cost
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_working_set_context(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                with gpu.working_set(n, n) as cost:
                    return work(cost)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_single_acquire_handoff(self, tmp_path):
        # cross-function ownership (release elsewhere) is legal
        res = lint_source(tmp_path, """
            def start(gpu, record, n):
                record.device_bytes = n
                record.cost = gpu.device_pool.request(n)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_impl_module_excluded(self, tmp_path):
        res = lint_source(tmp_path, """
            def request_twice(pool, other_pool, n):
                a = pool.request(n)
                b = other_pool.request(n)
                return a + b
        """, module="repro.gpu.allocator")
        assert "RPL020" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL030 cache-key purity
# ----------------------------------------------------------------------
class TestKeyPurity:
    def test_positive_env_read(self, tmp_path):
        res = lint_source(tmp_path, """
            import os

            def pattern_key(a):
                return (a.shape, os.environ.get("SOLVER_MODE"))
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_positive_time_in_key(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def numeric_key(a):
                return (a.nnz, time.time())
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_positive_mutable_global_read(self, tmp_path):
        res = lint_source(tmp_path, """
            FLAGS = {"mode": "fast"}

            def pattern_key(a):
                return (a.shape, FLAGS["mode"])
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_negative_pure_key(self, tmp_path):
        res = lint_source(tmp_path, """
            import hashlib

            def pattern_key(a):
                h = hashlib.blake2b(digest_size=16)
                h.update(bytes(a.indptr))
                return h.hexdigest()
        """, config=KEYS)
        assert "RPL030" not in rule_ids(res)

    def test_key_suffix_covered_everywhere(self, tmp_path):
        # *_key functions are checked even outside key_modules
        res = lint_source(tmp_path, """
            import os

            def cache_key(a):
                return (a.shape, os.getenv("MODE"))
        """)
        assert "RPL030" in rule_ids(res)

    def test_negative_constant_global(self, tmp_path):
        res = lint_source(tmp_path, """
            VERSION = 3

            def pattern_key(a):
                return (VERSION, a.shape)
        """, config=KEYS)
        assert "RPL030" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL040/041 metric and trace hygiene
# ----------------------------------------------------------------------
class TestMetricsHygiene:
    def test_positive_dynamic_metric_name(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, outcome):
                metrics.incr(outcome)
        """)
        assert "RPL040" in rule_ids(res)

    def test_negative_literal_metric_name(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics):
                metrics.incr("completed")
        """)
        assert "RPL040" not in rule_ids(res)

    def test_negative_loop_over_literal_tuples(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, a, b):
                for name, value in (("alpha", a), ("beta", b)):
                    metrics.incr(name, value)
        """)
        assert "RPL040" not in rule_ids(res)

    def test_positive_loop_over_dynamic_iterable(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, pairs):
                for name, value in pairs:
                    metrics.incr(name, value)
        """)
        assert "RPL040" in rule_ids(res)

    def test_positive_unknown_engine_kind(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                engine = f"worker{i}"
                metrics.span("solve", "solve", engine, t0, t1)
        """)
        assert "RPL041" in rule_ids(res)

    def test_negative_cpu_prefixed_engine(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                engine = f"cpu.worker{i}"
                metrics.span("solve", "solve", engine, t0, t1)
        """)
        assert "RPL041" not in rule_ids(res)

    def test_negative_engine_keyword(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                metrics.span("solve", "solve", engine=f"gpu{i}.compute")
        """)
        assert "RPL041" not in rule_ids(res)


# ----------------------------------------------------------------------
# framework: suppressions, baseline, output formats
# ----------------------------------------------------------------------
class TestSuppressions:
    SRC = """
        import time

        def stamp():
            return time.perf_counter(){inline}
    """

    def test_unsuppressed_fires(self, tmp_path):
        res = lint_source(
            tmp_path, self.SRC.format(inline=""), config=DET
        )
        assert rule_ids(res) == ["RPL010"]

    def test_line_suppression(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL010 -- budget clock"
            ),
            config=DET,
        )
        assert rule_ids(res) == []
        assert [f.rule_id for f in res.suppressed] == ["RPL010"]

    def test_line_suppression_wrong_rule_still_fires(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(inline="  # repro-lint: disable=RPL011"),
            config=DET,
        )
        assert rule_ids(res) == ["RPL010"]

    def test_blanket_line_suppression(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(inline="  # repro-lint: disable"),
            config=DET,
        )
        assert rule_ids(res) == []

    def test_file_suppression(self, tmp_path):
        src = (
            "# repro-lint: disable-file=RPL010 -- module-wide opt-out\n"
            + textwrap.dedent(self.SRC.format(inline=""))
        )
        res = lint_source(tmp_path, src, config=DET)
        assert rule_ids(res) == []
        assert [f.rule_id for f in res.suppressed] == ["RPL010"]


class TestBaseline:
    SRC = """
        import time

        def stamp():
            return time.perf_counter()
    """

    def test_round_trip(self, tmp_path):
        res = lint_source(tmp_path, self.SRC, config=DET)
        assert len(res.findings) == 1
        path = tmp_path / "fixmod.py"
        sf = SourceFile.parse(path, "fixmod", path.read_text())
        by_path = {str(path): sf}
        bl = Baseline.from_findings(res.findings, by_path)
        bl_path = tmp_path / "baseline.json"
        bl.save(bl_path)
        loaded = Baseline.load(bl_path)
        assert loaded.entries == bl.entries

        res2 = lint_source(tmp_path, self.SRC, config=DET, baseline=loaded)
        assert res2.findings == []
        assert [f.rule_id for f in res2.baselined] == ["RPL010"]

    def test_baseline_survives_line_shift(self, tmp_path):
        res = lint_source(tmp_path, self.SRC, config=DET)
        path = tmp_path / "fixmod.py"
        sf = SourceFile.parse(path, "fixmod", path.read_text())
        bl = Baseline.from_findings(res.findings, {str(path): sf})

        shifted = "\n\n\n" + textwrap.dedent(self.SRC)
        res2 = lint_source(tmp_path, shifted, config=DET, baseline=bl)
        assert res2.findings == []
        assert len(res2.baselined) == 1

    def test_unknown_version_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(p)


class TestOutputFormats:
    def _result(self, tmp_path):
        return lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=DET)

    def test_text_format(self, tmp_path):
        out = render(self._result(tmp_path), "text")
        assert "RPL010" in out
        assert "1 finding(s)" in out
        assert ":5:" in out  # line number present

    def test_json_format(self, tmp_path):
        out = render(self._result(tmp_path), "json")
        data = json.loads(out)
        assert data["ok"] is False
        assert data["findings"][0]["rule_id"] == "RPL010"
        assert data["findings"][0]["line"] == 5
        assert data["findings"][0]["severity"] == "error"

    def test_github_format(self, tmp_path):
        out = render(self._result(tmp_path), "github")
        assert out.startswith("::error file=")
        assert "title=RPL010" in out
        assert ",line=5," in out

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown format"):
            render(self._result(tmp_path), "xml")

    def test_deterministic_ordering(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def b():
                return time.perf_counter()

            def a():
                return time.time()
        """, config=DET)
        lines = [f.line for f in res.findings]
        assert lines == sorted(lines)


class TestFramework:
    def test_all_rules_unique_and_wellformed(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 10
        for r in rules:
            assert r.summary
            assert r.severity in ("error", "warning")

    def test_bad_rule_id_rejected(self):
        with pytest.raises(ValueError, match="RPLxxx"):
            Rule("XYZ01", "bad", "error", "nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Rule("RPL099", "bad", "fatal", "nope")

    def test_parse_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        files, errors = discover_files([bad])
        assert files == []
        assert len(errors) == 1
        assert "SyntaxError" in errors[0][1]

    def test_run_lint_end_to_end(self, tmp_path):
        p = tmp_path / "mod.py"
        p.write_text("def cache_key(a):\n    import os\n    return os.getenv('X')\n")
        result = run_lint([p])
        assert not result.ok
        assert rule_ids(result) == ["RPL030"]


class TestSelfHosted:
    """The repo lints itself clean with the committed baseline."""

    def test_src_repro_is_clean(self):
        repo = Path(__file__).resolve().parents[1]
        baseline_path = repo / "lint-baseline.json"
        baseline = (
            Baseline.load(baseline_path) if baseline_path.exists() else None
        )
        result = run_lint(
            [repo / "src" / "repro"],
            baseline=baseline,
            src_roots=[repo / "src"],
        )
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in result.findings
        )
