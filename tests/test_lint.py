"""Framework and per-rule tests for ``repro.lint``.

Each rule gets a positive fixture (the smell, must fire) and a negative
fixture (the sanctioned idiom, must stay silent); the framework tests
cover inline suppressions, the baseline round-trip, and the output
formats.  Fixtures are written to a temp tree and the checkers are
pointed at them through :class:`LintConfig` scope overrides.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    all_rules,
    discover_files,
    render,
    run_lint,
)
from repro.lint.core import Rule, SourceFile


# ----------------------------------------------------------------------
# fixture machinery
# ----------------------------------------------------------------------
def lint_source(
    tmp_path: Path,
    source: str,
    *,
    module: str = "fixmod",
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
):
    """Lint one fixture module with every checker; returns LintResult."""
    path = tmp_path / f"{module.replace('.', '_')}.py"
    path.write_text(textwrap.dedent(source))
    cfg = config or LintConfig()
    files, errors = discover_files([path])
    assert not errors
    # discovery derives the module name from the path; force the name
    # the scope override expects
    files[0].module = module
    from repro.lint.checkers import all_checkers
    from repro.lint.core import Finding

    raw: list[Finding] = []
    for checker in all_checkers():
        raw.extend(checker.check(files, cfg))
    raw.sort(key=Finding.sort_key)

    from repro.lint.runner import LintResult

    result = LintResult(files_checked=1)
    by_path = {str(files[0].path): files[0]}
    for f in raw:
        if files[0].is_suppressed(f):
            result.suppressed.append(f)
        elif baseline is not None and baseline.contains(f, by_path):
            result.baselined.append(f)
        else:
            result.findings.append(f)
    return result


def lint_sources(
    tmp_path: Path,
    sources: dict[str, str],
    *,
    config: LintConfig | None = None,
):
    """Lint a multi-module fixture tree with every checker.

    ``sources`` maps module names to source text; each module becomes
    one file and the whole set is analyzed together, so the
    interprocedural (program-scope) checkers see cross-module calls.
    """
    paths: list[Path] = []
    for module, source in sources.items():
        path = tmp_path / f"{module.replace('.', '_')}.py"
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    cfg = config or LintConfig()
    files, errors = discover_files(paths)
    assert not errors
    for sf, module in zip(files, sources):
        sf.module = module
    from repro.lint.checkers import all_checkers
    from repro.lint.core import Finding

    raw: list[Finding] = []
    for checker in all_checkers():
        raw.extend(checker.check(files, cfg))
    raw.sort(key=Finding.sort_key)

    from repro.lint.runner import LintResult

    result = LintResult(files_checked=len(files))
    by_path = {str(sf.path): sf for sf in files}
    for f in raw:
        sf = by_path.get(f.path)
        if sf is not None and sf.is_suppressed(f):
            result.suppressed.append(f)
        else:
            result.findings.append(f)
    return result


def rule_ids(result) -> list[str]:
    return [f.rule_id for f in result.findings]


CONC = LintConfig(concurrency_modules=("fixmod",))
DET = LintConfig(deterministic_modules=("fixmod",))
KEYS = LintConfig(key_modules=("fixmod",))
DETFLOW = LintConfig(deterministic_modules=("fixdet",))
WIRE = LintConfig(wire_modules=("fixwire",))


# ----------------------------------------------------------------------
# RPL001 lock-order cycles
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_positive_cycle(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.b:
                        with self.a:
                            pass
        """, config=CONC)
        assert "RPL001" in rule_ids(res)

    def test_negative_consistent_order(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """, config=CONC)
        assert "RPL001" not in rule_ids(res)

    def test_transitive_cycle_through_call(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def helper(self):
                    with self.a:
                        pass

                def one(self):
                    with self.b:
                        self.helper()

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """, config=CONC)
        assert "RPL001" in rule_ids(res)


# ----------------------------------------------------------------------
# RPL002 blocking call under lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_positive_sleep_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self):
                    with self.lock:
                        time.sleep(1.0)
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_positive_expensive_call_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            from somewhere import factorize

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self, a):
                    with self.lock:
                        return factorize(a)
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_negative_sleep_outside_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def work(self):
                    with self.lock:
                        x = 1
                    time.sleep(1.0)
                    return x
        """, config=CONC)
        assert "RPL002" not in rule_ids(res)

    def test_negative_condition_wait_is_exempt(self, tmp_path):
        # Condition.wait releases the lock it waits on: not blocking
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.cond = threading.Condition()

                def work(self):
                    with self.cond:
                        self.cond.wait(1.0)
        """, config=CONC)
        assert "RPL002" not in rule_ids(res)

    def test_positive_foreign_wait_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.event = threading.Event()

                def work(self):
                    with self.lock:
                        self.event.wait()
        """, config=CONC)
        assert "RPL002" in rule_ids(res)

    def test_positive_transitive_blocking(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading
            import time

            class S:
                def __init__(self):
                    self.lock = threading.Lock()

                def slow(self):
                    time.sleep(0.5)

                def work(self):
                    with self.lock:
                        self.slow()
        """, config=CONC)
        assert "RPL002" in rule_ids(res)


# ----------------------------------------------------------------------
# RPL003 callback under lock
# ----------------------------------------------------------------------
class TestCallbackUnderLock:
    def test_positive_event_set_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.done = threading.Event()

                def finish(self):
                    with self.lock:
                        self.done.set()
        """, config=CONC)
        assert "RPL003" in rule_ids(res)

    def test_positive_factory_under_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self, factory):
                    self.lock = threading.Lock()
                    self.node_factory = factory

                def build(self):
                    with self.lock:
                        return self.node_factory()
        """, config=CONC)
        assert "RPL003" in rule_ids(res)

    def test_negative_set_outside_lock(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class S:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.done = threading.Event()

                def finish(self):
                    with self.lock:
                        x = 1
                    self.done.set()
                    return x
        """, config=CONC)
        assert "RPL003" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL010/011/012 determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_positive_wall_clock(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=DET)
        assert "RPL010" in rule_ids(res)

    def test_positive_bare_import_wall_clock(self, tmp_path):
        res = lint_source(tmp_path, """
            from time import perf_counter

            def stamp():
                return perf_counter()
        """, config=DET)
        assert "RPL010" in rule_ids(res)

    def test_negative_out_of_scope_module(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=LintConfig(deterministic_modules=("other.module",)))
        assert "RPL010" not in rule_ids(res)

    def test_positive_unseeded_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
        """, config=DET)
        assert "RPL011" in rule_ids(res)

    def test_positive_legacy_global_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw():
                return np.random.rand(3)
        """, config=DET)
        assert "RPL011" in rule_ids(res)

    def test_negative_seeded_rng(self, tmp_path):
        res = lint_source(tmp_path, """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).random()
        """, config=DET)
        assert "RPL011" not in rule_ids(res)

    def test_positive_set_iteration(self, tmp_path):
        res = lint_source(tmp_path, """
            def weird(xs):
                pending = {str(x) for x in xs}
                return [p for p in pending]
        """, config=DET)
        assert "RPL012" in rule_ids(res)

    def test_negative_sorted_set_iteration(self, tmp_path):
        res = lint_source(tmp_path, """
            def stable(xs):
                pending = {str(x) for x in xs}
                return [p for p in sorted(pending)]
        """, config=DET)
        assert "RPL012" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL020 allocator ownership
# ----------------------------------------------------------------------
class TestAllocatorLeak:
    def test_positive_second_acquire_unprotected(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, n):
                a = gpu.device_pool.request(n)
                b = gpu.pinned_pool.request(n)
                return a + b
        """)
        assert "RPL020" in rule_ids(res)

    def test_positive_raise_with_outstanding(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, n):
                cost = gpu.device_pool.request(n)
                if n > 100:
                    raise ValueError("too big")
                return cost
        """)
        assert "RPL020" in rule_ids(res)

    def test_positive_fall_through_release(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                cost = gpu.device_pool.request(n)
                result = work(cost)
                gpu.device_pool.release(n)
                return result
        """)
        assert "RPL020" in rule_ids(res)

    def test_negative_try_finally_release(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                cost = gpu.device_pool.request(n)
                try:
                    return work(cost)
                finally:
                    gpu.device_pool.release(n)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_rollback_then_reraise(self, tmp_path):
        res = lint_source(tmp_path, """
            def reserve(gpu, d, p):
                cost = gpu.device_pool.request(d)
                try:
                    cost += gpu.pinned_pool.request(p)
                except BaseException:
                    gpu.device_pool.release(d)
                    raise
                return cost
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_working_set_context(self, tmp_path):
        res = lint_source(tmp_path, """
            def use(gpu, n, work):
                with gpu.working_set(n, n) as cost:
                    return work(cost)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_single_acquire_handoff(self, tmp_path):
        # cross-function ownership (release elsewhere) is legal
        res = lint_source(tmp_path, """
            def start(gpu, record, n):
                record.device_bytes = n
                record.cost = gpu.device_pool.request(n)
        """)
        assert "RPL020" not in rule_ids(res)

    def test_negative_impl_module_excluded(self, tmp_path):
        res = lint_source(tmp_path, """
            def request_twice(pool, other_pool, n):
                a = pool.request(n)
                b = other_pool.request(n)
                return a + b
        """, module="repro.gpu.allocator")
        assert "RPL020" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL030 cache-key purity
# ----------------------------------------------------------------------
class TestKeyPurity:
    def test_positive_env_read(self, tmp_path):
        res = lint_source(tmp_path, """
            import os

            def pattern_key(a):
                return (a.shape, os.environ.get("SOLVER_MODE"))
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_positive_time_in_key(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def numeric_key(a):
                return (a.nnz, time.time())
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_positive_mutable_global_read(self, tmp_path):
        res = lint_source(tmp_path, """
            FLAGS = {"mode": "fast"}

            def pattern_key(a):
                return (a.shape, FLAGS["mode"])
        """, config=KEYS)
        assert "RPL030" in rule_ids(res)

    def test_negative_pure_key(self, tmp_path):
        res = lint_source(tmp_path, """
            import hashlib

            def pattern_key(a):
                h = hashlib.blake2b(digest_size=16)
                h.update(bytes(a.indptr))
                return h.hexdigest()
        """, config=KEYS)
        assert "RPL030" not in rule_ids(res)

    def test_key_suffix_covered_everywhere(self, tmp_path):
        # *_key functions are checked even outside key_modules
        res = lint_source(tmp_path, """
            import os

            def cache_key(a):
                return (a.shape, os.getenv("MODE"))
        """)
        assert "RPL030" in rule_ids(res)

    def test_negative_constant_global(self, tmp_path):
        res = lint_source(tmp_path, """
            VERSION = 3

            def pattern_key(a):
                return (VERSION, a.shape)
        """, config=KEYS)
        assert "RPL030" not in rule_ids(res)


# ----------------------------------------------------------------------
# RPL040/041 metric and trace hygiene
# ----------------------------------------------------------------------
class TestMetricsHygiene:
    def test_positive_dynamic_metric_name(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, outcome):
                metrics.incr(outcome)
        """)
        assert "RPL040" in rule_ids(res)

    def test_negative_literal_metric_name(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics):
                metrics.incr("completed")
        """)
        assert "RPL040" not in rule_ids(res)

    def test_negative_loop_over_literal_tuples(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, a, b):
                for name, value in (("alpha", a), ("beta", b)):
                    metrics.incr(name, value)
        """)
        assert "RPL040" not in rule_ids(res)

    def test_positive_loop_over_dynamic_iterable(self, tmp_path):
        res = lint_source(tmp_path, """
            def record(metrics, pairs):
                for name, value in pairs:
                    metrics.incr(name, value)
        """)
        assert "RPL040" in rule_ids(res)

    def test_positive_unknown_engine_kind(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                engine = f"worker{i}"
                metrics.span("solve", "solve", engine, t0, t1)
        """)
        assert "RPL041" in rule_ids(res)

    def test_negative_cpu_prefixed_engine(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                engine = f"cpu.worker{i}"
                metrics.span("solve", "solve", engine, t0, t1)
        """)
        assert "RPL041" not in rule_ids(res)

    def test_negative_engine_keyword(self, tmp_path):
        res = lint_source(tmp_path, """
            def trace(metrics, i, t0, t1):
                metrics.span("solve", "solve", engine=f"gpu{i}.compute")
        """)
        assert "RPL041" not in rule_ids(res)


# ----------------------------------------------------------------------
# framework: suppressions, baseline, output formats
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# RPL050-053 determinism taint (interprocedural)
# ----------------------------------------------------------------------
class TestDeterminismFlow:
    def test_rpl050_wall_clock_reaches_key_sink(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def cache_key(name, t):
                return (name, t)

            def stamp(name):
                return cache_key(name, time.time())
        """)
        assert "RPL050" in rule_ids(res)

    def test_rpl050_negative_injected_clock(self, tmp_path):
        res = lint_source(tmp_path, """
            def cache_key(name, t):
                return (name, t)

            class Stamper:
                def __init__(self, clock):
                    self._clock = clock

                def stamp(self, name):
                    return cache_key(name, self._clock())
        """)
        assert "RPL050" not in rule_ids(res)

    def test_rpl050_line_suppression(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def cache_key(name, t):
                return (name, t)

            def stamp(name):
                return cache_key(name, time.time())  # repro-lint: disable=RPL050 -- replay fixture
        """)
        assert "RPL050" not in rule_ids(res)
        assert "RPL050" in [f.rule_id for f in res.suppressed]

    def test_rpl051_unseeded_rng_reaches_key_sink(self, tmp_path):
        res = lint_source(tmp_path, """
            import random

            def cache_key(name, t):
                return (name, t)

            def jitter(name):
                return cache_key(name, random.random())
        """)
        assert "RPL051" in rule_ids(res)

    def test_rpl051_negative_seeded_generator(self, tmp_path):
        res = lint_source(tmp_path, """
            import random

            def cache_key(name, t):
                return (name, t)

            def jitter(name):
                rng = random.Random(1234)
                return cache_key(name, rng.random())
        """)
        assert "RPL051" not in rule_ids(res)

    def test_rpl052_id_reaches_key_sink(self, tmp_path):
        res = lint_source(tmp_path, """
            def cache_key(name, t):
                return (name, t)

            def slot(obj):
                return cache_key("slot", id(obj))
        """)
        assert "RPL052" in rule_ids(res)

    def test_rpl052_negative_method_named_id(self, tmp_path):
        res = lint_source(tmp_path, """
            def cache_key(name, t):
                return (name, t)

            def slot(registry, obj):
                return cache_key("slot", registry.id(obj))
        """)
        assert "RPL052" not in rule_ids(res)

    def test_rpl053_set_order_reaches_key_sink(self, tmp_path):
        res = lint_source(tmp_path, """
            def cache_key(parts):
                return tuple(parts)

            def tags(names):
                distinct = [n for n in set(names)]
                return cache_key(distinct)
        """)
        assert "RPL053" in rule_ids(res)

    def test_rpl053_negative_sorted_set(self, tmp_path):
        res = lint_source(tmp_path, """
            def cache_key(parts):
                return tuple(parts)

            def tags(names):
                return cache_key(sorted(set(names)))
        """)
        assert "RPL053" not in rule_ids(res)

    def test_cross_module_wall_clock_two_hops(self, tmp_path):
        """Source in fixa -> relay in fixb -> ledger sink in fixdet."""
        res = lint_sources(tmp_path, {
            "fixdet": """
                _ledger = {}

                def record(name, t):
                    _ledger[name] = t
            """,
            "fixb": """
                from fixdet import record

                def relay(name, t):
                    record(name, t)
            """,
            "fixa": """
                import time

                from fixb import relay

                def stamp(name):
                    relay(name, time.time())
            """,
        }, config=DETFLOW)
        hits = [f for f in res.findings if f.rule_id == "RPL050"]
        assert hits, rule_ids(res)
        # reported at the source-side call, naming the remote sink
        assert all(f.path.endswith("fixa.py") for f in hits)
        assert any(
            "relay" in f.message and "fixdet" in f.message for f in hits
        )


# ----------------------------------------------------------------------
# RPL060/061 exception-safety resource paths (interprocedural)
# ----------------------------------------------------------------------
class TestResourceFlow:
    def test_rpl060_reservation_across_raising_call(self, tmp_path):
        res = lint_source(tmp_path, """
            def validate(n):
                if n < 0:
                    raise ValueError("negative")

            def grab(pool, n):
                handle = pool.reserve(n)
                validate(n)
                pool.release(handle)
                return handle
        """)
        assert "RPL060" in rule_ids(res)

    def test_rpl060_negative_rollback_on_failure(self, tmp_path):
        res = lint_source(tmp_path, """
            def validate(n):
                if n < 0:
                    raise ValueError("negative")

            def grab(pool, n):
                handle = pool.reserve(n)
                try:
                    validate(n)
                except Exception:
                    pool.rollback(handle)
                    raise
                pool.release(handle)
                return handle
        """)
        assert "RPL060" not in rule_ids(res)

    def test_rpl060_line_suppression(self, tmp_path):
        res = lint_source(tmp_path, """
            def validate(n):
                if n < 0:
                    raise ValueError("negative")

            def grab(pool, n):
                handle = pool.reserve(n)
                validate(n)  # repro-lint: disable=RPL060 -- validate cannot raise here
                pool.release(handle)
                return handle
        """)
        assert "RPL060" not in rule_ids(res)
        assert "RPL060" in [f.rule_id for f in res.suppressed]

    def test_rpl061_manual_lock_across_raising_call(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            _pool_lock = threading.Lock()

            def validate(n):
                if n < 0:
                    raise ValueError("negative")

            def bump(n):
                _pool_lock.acquire()
                validate(n)
                _pool_lock.release()
        """)
        assert "RPL061" in rule_ids(res)

    def test_rpl061_negative_release_in_finally(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            _pool_lock = threading.Lock()

            def validate(n):
                if n < 0:
                    raise ValueError("negative")

            def bump(n):
                _pool_lock.acquire()
                try:
                    validate(n)
                finally:
                    _pool_lock.release()
        """)
        assert "RPL061" not in rule_ids(res)

    def test_cross_module_raise_two_hops(self, tmp_path):
        """Raise in fixc -> relay in fixb -> reservation held in fixa."""
        res = lint_sources(tmp_path, {
            "fixc": """
                def validate(n):
                    if n < 0:
                        raise ValueError("negative")
            """,
            "fixb": """
                from fixc import validate

                def check(n):
                    return validate(n)
            """,
            "fixa": """
                from fixb import check

                def grab(pool, n):
                    handle = pool.reserve(n)
                    check(n)
                    pool.release(handle)
                    return handle
            """,
        })
        hits = [f for f in res.findings if f.rule_id == "RPL060"]
        assert hits, rule_ids(res)
        assert all(f.path.endswith("fixa.py") for f in hits)
        assert any("check()" in f.message for f in hits)


# ----------------------------------------------------------------------
# RPL070-072 guard inference
# ----------------------------------------------------------------------
class TestGuardInference:
    def test_rpl070_unguarded_write(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n = self._n + 1

                def read(self):
                    with self._lock:
                        return self._n

                def reset(self):
                    self._n = 0
        """)
        assert "RPL070" in rule_ids(res)

    def test_rpl071_unguarded_read(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n = self._n + 1

                def read(self):
                    with self._lock:
                        return self._n

                def peek(self):
                    return self._n
        """)
        assert "RPL071" in rule_ids(res)

    def test_rpl072_inconsistent_guard(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._aux = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n = self._n + 1

                def read(self):
                    with self._lock:
                        return self._n

                def cross(self):
                    with self._aux:
                        return self._n
        """)
        assert "RPL072" in rule_ids(res)

    def test_negative_all_accesses_guarded(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n = self._n + 1

                def read(self):
                    with self._lock:
                        return self._n

                def reset(self):
                    with self._lock:
                        self._n = 0
        """)
        ids = rule_ids(res)
        assert not {"RPL070", "RPL071", "RPL072"} & set(ids)

    def test_negative_immutable_after_construction(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Config:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._limit = 8

                def a(self):
                    return self._limit

                def b(self):
                    return self._limit

                def c(self):
                    return self._limit
        """)
        assert "RPL071" not in rule_ids(res)

    def test_rpl070_line_suppression(self, tmp_path):
        res = lint_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n = self._n + 1

                def read(self):
                    with self._lock:
                        return self._n

                def reset(self):
                    self._n = 0  # repro-lint: disable=RPL070 -- single-threaded teardown
        """)
        assert "RPL070" not in rule_ids(res)
        assert "RPL070" in [f.rule_id for f in res.suppressed]

    # Guard inference is class-scoped by construction (an attribute and
    # its lock live on one class), so the "cross-module" fixture for
    # this family exercises the interprocedural mechanism itself: the
    # entry-held lock set propagating through >= 2 private call hops,
    # with a consumer module driving the public API.
    TALLY = """
        import threading

        class Tally:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._step()

            def read(self):
                with self._lock:
                    return self._n

            def reset(self):
                with self._lock:
                    self._n = 0

            def scale(self):
                with self._lock:
                    self._n = self._n * 2

            def snap(self):
                with self._lock:
                    return self._n

            def _step(self):
                self._apply()

            def _apply(self):
                self._n = self._n + 1
    """

    SNEAK = """
        import threading

        class Tally:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._step()

            def read(self):
                with self._lock:
                    return self._n

            def reset(self):
                with self._lock:
                    self._n = 0

            def scale(self):
                with self._lock:
                    self._n = self._n * 2

            def snap(self):
                with self._lock:
                    return self._n

            def sneak(self):
                self._step()

            def _step(self):
                self._apply()

            def _apply(self):
                self._n = self._n + 1
    """

    DRIVER = """
        from fixa import Tally

        def drive():
            t = Tally()
            t.bump()
            return t.read()
    """

    def test_two_hop_entry_held_negative(self, tmp_path):
        """_apply is only reached via bump -> _step -> _apply, every
        path holding the lock: the two-hop entry set keeps it clean."""
        res = lint_sources(tmp_path, {
            "fixa": self.TALLY,
            "fixb": self.DRIVER,
        })
        ids = rule_ids(res)
        assert not {"RPL070", "RPL071", "RPL072"} & set(ids)

    def test_two_hop_entry_held_positive(self, tmp_path):
        """One unlocked call site into the two-hop chain voids the
        entry-held set, so _apply's write becomes the minority bug."""
        res = lint_sources(tmp_path, {
            "fixa": self.SNEAK,
            "fixb": self.DRIVER,
        })
        assert "RPL070" in rule_ids(res)


# ----------------------------------------------------------------------
# RPL080-082 wire hygiene (interprocedural)
# ----------------------------------------------------------------------
class TestWireHygiene:
    def test_rpl080_exception_text_in_envelope(self, tmp_path):
        res = lint_source(tmp_path, """
            from repro.api.protocol import error_response

            def risky():
                raise RuntimeError("boom")

            def answer(rid):
                try:
                    risky()
                except Exception as exc:
                    return error_response("internal", str(exc), request_id=rid)
        """, module="fixwire", config=WIRE)
        assert "RPL080" in rule_ids(res)

    def test_rpl080_negative_public_message(self, tmp_path):
        res = lint_source(tmp_path, """
            from repro.api.protocol import error_response, public_message

            def risky():
                raise RuntimeError("boom")

            def answer(rid):
                try:
                    risky()
                except Exception as exc:
                    return error_response(
                        "internal", public_message(exc), request_id=rid
                    )
        """, module="fixwire", config=WIRE)
        assert "RPL080" not in rule_ids(res)

    def test_rpl080_negative_wire_safe_exception(self, tmp_path):
        res = lint_source(tmp_path, """
            from repro.api.protocol import ApiError, error_response

            def risky():
                raise ApiError("invalid_request", "bad matrix")

            def answer(rid):
                try:
                    risky()
                except ApiError as exc:
                    return error_response(
                        "invalid_request", str(exc), request_id=rid
                    )
        """, module="fixwire", config=WIRE)
        assert "RPL080" not in rule_ids(res)

    def test_rpl080_metric_name_sink(self, tmp_path):
        res = lint_source(tmp_path, """
            def risky():
                raise RuntimeError("boom")

            def tally(metrics):
                try:
                    risky()
                except Exception as exc:
                    metrics.incr(f"errors.{exc}")
        """, module="fixwire", config=WIRE)
        assert "RPL080" in rule_ids(res)

    def test_rpl080_line_suppression(self, tmp_path):
        res = lint_source(tmp_path, """
            from repro.api.protocol import error_response

            def risky():
                raise RuntimeError("boom")

            def answer(rid):
                try:
                    risky()
                except Exception as exc:
                    return error_response("internal", str(exc), request_id=rid)  # repro-lint: disable=RPL080 -- test fixture
        """, module="fixwire", config=WIRE)
        assert "RPL080" not in rule_ids(res)
        assert "RPL080" in [f.rule_id for f in res.suppressed]

    def test_rpl081_path_in_response(self, tmp_path):
        res = lint_source(tmp_path, """
            import os

            from repro.api.protocol import json_response

            def where(rid):
                return json_response(
                    200,
                    {"spill_dir": os.path.join("/tmp", rid)},
                    request_id=rid,
                )
        """, module="fixwire", config=WIRE)
        assert "RPL081" in rule_ids(res)

    def test_rpl081_negative_opaque_id(self, tmp_path):
        res = lint_source(tmp_path, """
            from repro.api.protocol import json_response

            def where(rid, spill_index):
                return json_response(
                    200, {"spill": spill_index}, request_id=rid
                )
        """, module="fixwire", config=WIRE)
        assert "RPL081" not in rule_ids(res)

    def test_rpl082_env_value_in_response(self, tmp_path):
        res = lint_source(tmp_path, """
            import os

            from repro.api.protocol import json_response

            def config_doc(rid):
                return json_response(
                    200, {"mode": os.getenv("REPRO_MODE")}, request_id=rid
                )
        """, module="fixwire", config=WIRE)
        assert "RPL082" in rule_ids(res)

    def test_rpl082_negative_numeric_conversion(self, tmp_path):
        res = lint_source(tmp_path, """
            import os

            from repro.api.protocol import json_response

            def config_doc(rid):
                return json_response(
                    200,
                    {"port": int(os.getenv("REPRO_PORT", "0"))},
                    request_id=rid,
                )
        """, module="fixwire", config=WIRE)
        assert "RPL082" not in rule_ids(res)

    def test_cross_module_exception_text_two_hops(self, tmp_path):
        """Exception caught in fixa -> relay in fixb -> envelope in
        fixwire."""
        res = lint_sources(tmp_path, {
            "fixwire": """
                from repro.api.protocol import error_response

                def emit(rid, text):
                    return error_response("internal", text, request_id=rid)
            """,
            "fixb": """
                from fixwire import emit

                def relay(rid, text):
                    return emit(rid, text)
            """,
            "fixa": """
                from fixb import relay

                def failed(rid):
                    try:
                        raise RuntimeError("boom")
                    except Exception as exc:
                        return relay(rid, str(exc))
            """,
        }, config=WIRE)
        hits = [f for f in res.findings if f.rule_id == "RPL080"]
        assert hits, rule_ids(res)
        assert all(f.path.endswith("fixa.py") for f in hits)
        assert any(
            "relay" in f.message and "fixwire" in f.message for f in hits
        )


# ----------------------------------------------------------------------
# RPL090 suppression hygiene
# ----------------------------------------------------------------------
class TestSuppressionHygiene:
    SRC = """
        import time

        def stamp():
            return time.perf_counter(){inline}
    """

    def test_bare_suppression_warns(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(inline="  # repro-lint: disable=RPL010"),
            config=DET,
        )
        ids = rule_ids(res)
        assert "RPL090" in ids
        assert "RPL010" not in ids  # still suppressed, just audited

    def test_justified_suppression_is_clean(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL010 -- budget clock"
            ),
            config=DET,
        )
        assert "RPL090" not in rule_ids(res)

    def test_bare_blanket_disable_cannot_hide_rpl090(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(inline="  # repro-lint: disable"),
            config=DET,
        )
        assert "RPL090" in rule_ids(res)

    def test_explicit_rpl090_mention_suppresses_the_warning(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL010,RPL090"
            ),
            config=DET,
        )
        assert "RPL090" not in rule_ids(res)
        assert "RPL090" in [f.rule_id for f in res.suppressed]

    def test_bare_file_scope_suppression_warns(self, tmp_path):
        src = (
            "# repro-lint: disable-file=RPL010\n"
            + textwrap.dedent(self.SRC.format(inline=""))
        )
        res = lint_source(tmp_path, src, config=DET)
        assert "RPL090" in rule_ids(res)


class TestSuppressions:
    SRC = """
        import time

        def stamp():
            return time.perf_counter(){inline}
    """

    def test_unsuppressed_fires(self, tmp_path):
        res = lint_source(
            tmp_path, self.SRC.format(inline=""), config=DET
        )
        assert rule_ids(res) == ["RPL010"]

    def test_line_suppression(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL010 -- budget clock"
            ),
            config=DET,
        )
        assert rule_ids(res) == []
        assert [f.rule_id for f in res.suppressed] == ["RPL010"]

    def test_line_suppression_wrong_rule_still_fires(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL011 -- wrong rule on purpose"
            ),
            config=DET,
        )
        assert rule_ids(res) == ["RPL010"]

    def test_blanket_line_suppression(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable -- blanket for the fixture"
            ),
            config=DET,
        )
        assert rule_ids(res) == []

    def test_file_suppression(self, tmp_path):
        src = (
            "# repro-lint: disable-file=RPL010 -- module-wide opt-out\n"
            + textwrap.dedent(self.SRC.format(inline=""))
        )
        res = lint_source(tmp_path, src, config=DET)
        assert rule_ids(res) == []
        assert [f.rule_id for f in res.suppressed] == ["RPL010"]


class TestBaseline:
    SRC = """
        import time

        def stamp():
            return time.perf_counter()
    """

    def test_round_trip(self, tmp_path):
        res = lint_source(tmp_path, self.SRC, config=DET)
        assert len(res.findings) == 1
        path = tmp_path / "fixmod.py"
        sf = SourceFile.parse(path, "fixmod", path.read_text())
        by_path = {str(path): sf}
        bl = Baseline.from_findings(res.findings, by_path)
        bl_path = tmp_path / "baseline.json"
        bl.save(bl_path)
        loaded = Baseline.load(bl_path)
        assert loaded.entries == bl.entries

        res2 = lint_source(tmp_path, self.SRC, config=DET, baseline=loaded)
        assert res2.findings == []
        assert [f.rule_id for f in res2.baselined] == ["RPL010"]

    def test_baseline_survives_line_shift(self, tmp_path):
        res = lint_source(tmp_path, self.SRC, config=DET)
        path = tmp_path / "fixmod.py"
        sf = SourceFile.parse(path, "fixmod", path.read_text())
        bl = Baseline.from_findings(res.findings, {str(path): sf})

        shifted = "\n\n\n" + textwrap.dedent(self.SRC)
        res2 = lint_source(tmp_path, shifted, config=DET, baseline=bl)
        assert res2.findings == []
        assert len(res2.baselined) == 1

    def test_unknown_version_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(p)


class TestOutputFormats:
    def _result(self, tmp_path):
        return lint_source(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """, config=DET)

    def test_text_format(self, tmp_path):
        out = render(self._result(tmp_path), "text")
        assert "RPL010" in out
        assert "1 finding(s)" in out
        assert ":5:" in out  # line number present

    def test_json_format(self, tmp_path):
        out = render(self._result(tmp_path), "json")
        data = json.loads(out)
        assert data["ok"] is False
        assert data["findings"][0]["rule_id"] == "RPL010"
        assert data["findings"][0]["line"] == 5
        assert data["findings"][0]["severity"] == "error"

    def test_github_format(self, tmp_path):
        out = render(self._result(tmp_path), "github")
        assert out.startswith("::error file=")
        assert "title=RPL010" in out
        assert ",line=5," in out

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown format"):
            render(self._result(tmp_path), "xml")

    def test_deterministic_ordering(self, tmp_path):
        res = lint_source(tmp_path, """
            import time

            def b():
                return time.perf_counter()

            def a():
                return time.time()
        """, config=DET)
        lines = [f.line for f in res.findings]
        assert lines == sorted(lines)


class TestSarifFormat:
    SRC = """
        import time

        def stamp():
            return time.perf_counter(){inline}
    """

    def test_sarif_document_shape(self, tmp_path):
        res = lint_source(
            tmp_path, self.SRC.format(inline=""), config=DET
        )
        doc = json.loads(render(res, "sarif", rules=all_rules()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        catalogue = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for rid in ("RPL010", "RPL050", "RPL060", "RPL070", "RPL080",
                    "RPL090"):
            assert rid in catalogue
        hit = run["results"][0]
        assert hit["ruleId"] == "RPL010"
        assert hit["level"] == "error"
        region = hit["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        assert "suppressions" not in hit

    def test_sarif_suppressed_finding_is_marked(self, tmp_path):
        res = lint_source(
            tmp_path,
            self.SRC.format(
                inline="  # repro-lint: disable=RPL010 -- budget clock"
            ),
            config=DET,
        )
        doc = json.loads(render(res, "sarif", rules=all_rules()))
        results = doc["runs"][0]["results"]
        marked = [r for r in results if r.get("suppressions")]
        assert marked
        assert marked[0]["suppressions"][0]["kind"] == "inSource"

    def test_sarif_registered_format(self):
        from repro.lint.output import FORMATS

        assert "sarif" in FORMATS


class TestIncrementalCache:
    # impure key function: one deterministic file-scope finding (RPL030)
    SRC = "def cache_key(a):\n    import os\n    return os.getenv('X')\n"

    def _cache(self, tmp_path):
        from repro.lint.cache import LintCache

        return LintCache(tmp_path / ".lint-cache")

    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        p = tmp_path / "mod.py"
        p.write_text(self.SRC)
        cold = self._cache(tmp_path)
        r1 = run_lint([p], cache=cold)
        assert cold.hits == 0
        cold.save()

        warm = self._cache(tmp_path)
        r2 = run_lint([p], cache=warm)
        assert warm.misses == 0
        assert warm.hits >= 2  # one file entry + the program tree entry
        assert rule_ids(r1) == rule_ids(r2) == ["RPL030"]

    def test_edit_invalidates(self, tmp_path):
        p = tmp_path / "mod.py"
        p.write_text(self.SRC)
        cold = self._cache(tmp_path)
        run_lint([p], cache=cold)
        cold.save()

        p.write_text("def cache_key(a):\n    return ('k', a)\n")
        warm = self._cache(tmp_path)
        r2 = run_lint([p], cache=warm)
        assert warm.misses > 0
        assert rule_ids(r2) == []

    def test_suppressions_reapplied_on_cache_hit(self, tmp_path):
        # the cache stores *raw* findings; editing only the suppression
        # comment must change the outcome (the file key covers text)
        p = tmp_path / "mod.py"
        p.write_text(self.SRC)
        cold = self._cache(tmp_path)
        r1 = run_lint([p], cache=cold)
        assert rule_ids(r1) == ["RPL030"]
        cold.save()

        p.write_text(
            "def cache_key(a):\n    import os\n"
            "    return os.getenv('X')"
            "  # repro-lint: disable=RPL030 -- fixture\n"
        )
        warm = self._cache(tmp_path)
        r2 = run_lint([p], cache=warm)
        assert rule_ids(r2) == []
        assert [f.rule_id for f in r2.suppressed] == ["RPL030"]

    def test_save_writes_gitignore_and_prunes(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text(self.SRC)
        b.write_text("def helper(x):\n    return x\n")
        cache = self._cache(tmp_path)
        run_lint([a, b], cache=cache)
        cache.save()
        root = tmp_path / ".lint-cache"
        assert (root / ".gitignore").read_text() == "*\n"
        assert len(json.loads((root / "files.json").read_text())) == 2

        # next run over a smaller tree prunes the stale entry on save
        cache2 = self._cache(tmp_path)
        run_lint([a], cache=cache2)
        cache2.save()
        assert len(json.loads((root / "files.json").read_text())) == 1

    def test_config_fingerprint_is_canonical(self):
        from repro.lint.cache import _config_fingerprint

        assert _config_fingerprint(LintConfig()) == _config_fingerprint(
            LintConfig()
        )
        assert _config_fingerprint(LintConfig()) != _config_fingerprint(
            DET
        )


class TestFilterToPaths:
    def test_reporting_narrows_but_accounting_survives(self, tmp_path):
        from repro.lint.runner import filter_to_paths

        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text(
            "def cache_key(x):\n    import os\n    return os.getenv('X')\n"
        )
        b.write_text(
            "def data_key(x):\n    import os\n    return os.getenv('Y')\n"
        )
        result = run_lint([a, b])
        assert len(result.findings) == 2

        narrowed = filter_to_paths(result, {a})
        assert [Path(f.path).name for f in narrowed.findings] == ["a.py"]
        # the analysis still covered the whole tree
        assert narrowed.files_checked == 2


class TestFramework:
    def test_all_rules_unique_and_wellformed(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 10
        for r in rules:
            assert r.summary
            assert r.severity in ("error", "warning")

    def test_bad_rule_id_rejected(self):
        with pytest.raises(ValueError, match="RPLxxx"):
            Rule("XYZ01", "bad", "error", "nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Rule("RPL099", "bad", "fatal", "nope")

    def test_parse_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        files, errors = discover_files([bad])
        assert files == []
        assert len(errors) == 1
        assert "SyntaxError" in errors[0][1]

    def test_run_lint_end_to_end(self, tmp_path):
        p = tmp_path / "mod.py"
        p.write_text("def cache_key(a):\n    import os\n    return os.getenv('X')\n")
        result = run_lint([p])
        assert not result.ok
        assert rule_ids(result) == ["RPL030"]


class TestSelfHosted:
    """The repo lints itself clean with the committed baseline."""

    def test_src_repro_is_clean(self):
        repo = Path(__file__).resolve().parents[1]
        baseline_path = repo / "lint-baseline.json"
        baseline = (
            Baseline.load(baseline_path) if baseline_path.exists() else None
        )
        result = run_lint(
            [repo / "src" / "repro"],
            baseline=baseline,
            src_roots=[repo / "src"],
        )
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in result.findings
        )
