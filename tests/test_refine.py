"""Targeted tests for :mod:`repro.multifrontal.refine`.

Covers the paths the end-to-end suites only graze: the non-convergence
(budget exhausted / stagnation) branch, the zero-RHS edge case, and the
central mixed-precision claim — an fp32-produced factor refined against
the fp64 matrix reaches double-precision solve accuracy on the whole
generator suite.
"""

import numpy as np
import pytest

from repro.matrices import (
    elasticity_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)
from repro.multifrontal import SparseCholeskySolver
from repro.multifrontal.refine import iterative_refinement


def _factored(a, **kwargs):
    solver = SparseCholeskySolver(a, ordering="amd", **kwargs)
    solver.analyze().factorize()
    return solver


class TestNonConvergence:
    def test_unreachable_tolerance_reports_not_converged(self, lap2d_small):
        solver = _factored(lap2d_small)
        b = np.ones(lap2d_small.n_rows)
        res = iterative_refinement(
            solver.a, solver.factor, b, tol=0.0, max_iter=3
        )
        assert not res.converged
        # stagnation may stop the loop before the budget, never after it
        assert 1 <= res.iterations <= 3
        assert len(res.residual_norms) == res.iterations + 1
        # the non-converged x is still the best iterate, not garbage
        assert res.final_residual < 1e-12

    def test_zero_budget_returns_direct_solve(self, lap2d_small):
        solver = _factored(lap2d_small)
        b = np.ones(lap2d_small.n_rows)
        res = iterative_refinement(
            solver.a, solver.factor, b, tol=0.0, max_iter=0
        )
        assert res.iterations == 0
        assert not res.converged
        assert res.residual_norms == [res.initial_residual]

    def test_stagnation_guard_stops_early(self, lap2d_small):
        # a double-precision factor converges in one step; with tol=0 the
        # guard (norms[-1] > 0.5 * norms[-2]) must fire well before the
        # large budget is exhausted
        solver = _factored(lap2d_small)
        b = np.arange(1.0, lap2d_small.n_rows + 1.0)
        res = iterative_refinement(
            solver.a, solver.factor, b, tol=0.0, max_iter=50
        )
        assert res.iterations < 50


class TestZeroRhs:
    def test_zero_rhs_converges_immediately(self, lap2d_small):
        solver = _factored(lap2d_small)
        b = np.zeros(lap2d_small.n_rows)
        res = iterative_refinement(solver.a, solver.factor, b)
        assert res.converged
        assert res.iterations == 0
        assert res.initial_residual == 0.0
        assert res.final_residual == 0.0
        np.testing.assert_array_equal(res.x, np.zeros_like(b))


class TestMixedPrecisionRefinement:
    """fp32 factor + fp64 refinement = fp64 accuracy (paper Sec. III-B)."""

    CASES = [
        ("lap2d", lambda: grid_laplacian_2d(12, 12)),
        ("lap3d", lambda: grid_laplacian_3d(5, 5, 5)),
        ("elasticity", lambda: elasticity_3d(3, 3, 3)),
        ("random", lambda: random_spd(90, seed=17)),
    ]

    @pytest.mark.parametrize(
        "name,make", CASES, ids=[c[0] for c in CASES]
    )
    def test_fp32_factor_refines_to_fp64(self, name, make):
        a = make()
        solver = _factored(a, policy="P4")     # device kernels run in fp32
        b = np.random.default_rng(5).standard_normal(a.n_rows)
        direct = iterative_refinement(
            solver.a, solver.factor, b, tol=0.0, max_iter=0
        )
        res = iterative_refinement(
            solver.a, solver.factor, b, tol=1e-12, max_iter=8
        )
        assert res.converged, f"{name}: stalled at {res.final_residual:.3e}"
        assert res.final_residual <= 1e-12
        # refinement must have actually improved on the raw fp32 solve
        assert res.final_residual < direct.initial_residual

    def test_fp32_initial_residual_is_single_precision(self):
        a = grid_laplacian_2d(12, 12)
        solver = _factored(a, policy="P4")
        b = np.ones(a.n_rows)
        res = iterative_refinement(solver.a, solver.factor, b)
        # the first (unrefined) residual reflects fp32 kernels: far worse
        # than fp64 roundoff, far better than nonsense
        assert 1e-14 < res.initial_residual < 1e-3
