"""MatrixMarket IO round trips."""

import numpy as np
import pytest

from repro.matrices import random_spd, read_matrix_market, write_matrix_market
from repro.matrices.csc import csc_from_dense


def test_symmetric_round_trip(tmp_path):
    a = random_spd(40, seed=5)
    path = tmp_path / "a.mtx"
    write_matrix_market(path, a, symmetric=True)
    b = read_matrix_market(path)
    assert a.allclose(b)


def test_general_round_trip(tmp_path, rng):
    d = rng.normal(size=(6, 4))
    d[np.abs(d) < 0.5] = 0.0
    a = csc_from_dense(d)
    path = tmp_path / "g.mtx"
    write_matrix_market(path, a, symmetric=False)
    b = read_matrix_market(path)
    assert a.allclose(b)


def test_symmetric_file_stores_lower_triangle_only(tmp_path):
    a = random_spd(10, seed=1)
    path = tmp_path / "low.mtx"
    write_matrix_market(path, a, symmetric=True)
    header, counts = open(path).read().splitlines()[:2]
    assert header.endswith("symmetric")
    nnz_file = int(counts.split()[2])
    assert nnz_file == a.lower_triangle().nnz


def test_values_preserved_exactly(tmp_path):
    # repr round trip keeps float64 bit patterns
    d = np.array([[1.0 / 3.0, 0.0], [0.0, np.pi]])
    a = csc_from_dense(d)
    path = tmp_path / "exact.mtx"
    write_matrix_market(path, a, symmetric=False)
    b = read_matrix_market(path)
    assert np.array_equal(b.to_dense(), d)


def test_rejects_unknown_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_skips_comment_lines(tmp_path):
    path = tmp_path / "comments.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "% another\n"
        "2 2 2\n1 1 1.5\n2 2 2.5\n"
    )
    a = read_matrix_market(path)
    assert np.allclose(a.to_dense(), np.diag([1.5, 2.5]))
