"""Update-stack analysis and Liu's stack-minimizing traversal."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_3d, random_spd
from repro.multifrontal import factorize_numeric
from repro.policies import make_policy
from repro.symbolic import symbolic_factorize
from repro.symbolic.stack import (
    estimate_peak_update_bytes,
    stack_minimizing_postorder,
    update_bytes,
)
from repro.workload import geometric_nd_workload


@pytest.fixture(scope="module")
def sf():
    return symbolic_factorize(grid_laplacian_3d(8, 8, 8), ordering="nd")


class TestEstimate:
    def test_matches_numeric_driver(self, sf, lap3d_small):
        sf2 = symbolic_factorize(lap3d_small, ordering="nd")
        nf = factorize_numeric(lap3d_small, sf2, make_policy("P1"))
        assert estimate_peak_update_bytes(sf2) == nf.peak_update_bytes

    def test_custom_schedule_matches_numeric_driver(self, lap3d_small):
        sf2 = symbolic_factorize(lap3d_small, ordering="nd")
        spost = stack_minimizing_postorder(sf2)
        est = estimate_peak_update_bytes(sf2, spost)
        nf = factorize_numeric(lap3d_small, sf2, make_policy("P1"), spost=spost)
        assert est == nf.peak_update_bytes

    def test_invalid_schedule_rejected(self, sf):
        # parents before children leak updates
        bad = sf.spost[::-1].copy()
        with pytest.raises((ValueError, KeyError)):
            estimate_peak_update_bytes(sf, bad)

    def test_update_bytes(self, sf):
        for s in range(sf.n_supernodes):
            m = sf.update_size(s)
            assert update_bytes(sf, s) == m * m * 8


class TestOptimizedOrder:
    def test_is_valid_postorder(self, sf):
        spost = stack_minimizing_postorder(sf)
        assert np.array_equal(np.sort(spost), np.arange(sf.n_supernodes))
        seen = set()
        kids = sf.schildren()
        for s in spost:
            for c in kids[int(s)]:
                assert c in seen
            seen.add(int(s))

    def test_never_worse_than_default(self):
        for seed in (1, 2, 3):
            a = random_spd(150, seed=seed, avg_degree=5)
            sf2 = symbolic_factorize(a, ordering="amd")
            default = estimate_peak_update_bytes(sf2)
            optimized = estimate_peak_update_bytes(
                sf2, stack_minimizing_postorder(sf2)
            )
            assert optimized <= default

    def test_improves_on_imbalanced_trees(self):
        # elongated boxes produce sibling subtrees of very different
        # weights, where visiting order matters
        sf2 = geometric_nd_workload(8, 8, 64, leaf_cells=8)
        default = estimate_peak_update_bytes(sf2)
        optimized = estimate_peak_update_bytes(
            sf2, stack_minimizing_postorder(sf2)
        )
        assert optimized <= default

    def test_numeric_result_independent_of_schedule(self, lap3d_small):
        sf2 = symbolic_factorize(lap3d_small, ordering="nd")
        nf_a = factorize_numeric(lap3d_small, sf2, make_policy("P1"))
        nf_b = factorize_numeric(
            lap3d_small, sf2, make_policy("P1"),
            spost=stack_minimizing_postorder(sf2),
        )
        from repro.multifrontal import solve_factored

        b = np.ones(lap3d_small.n_rows)
        assert np.allclose(
            solve_factored(nf_a, b), solve_factored(nf_b, b), atol=1e-12
        )
