"""Geometric ND workload generator: structure, calibration, scheduling."""

import numpy as np
import pytest

from repro.parallel import list_schedule, make_worker_pool
from repro.policies import make_policy
from repro.symbolic.etree import NO_PARENT
from repro.workload import PAPER_WORKLOADS, geometric_nd_workload, paper_workload


class TestGenerator:
    def test_column_count_matches_grid(self):
        sf = geometric_nd_workload(6, 5, 4, dof=2)
        assert sf.n == 6 * 5 * 4 * 2

    def test_single_cell(self):
        sf = geometric_nd_workload(1, 1, 1)
        assert sf.n == 1
        assert sf.n_supernodes == 1
        assert sf.sparent[0] == NO_PARENT

    def test_leaf_only_when_small(self):
        sf = geometric_nd_workload(4, 4, 4, leaf_cells=64)
        assert sf.n_supernodes == 1

    def test_tree_is_binaryish_forest_with_one_root(self):
        sf = geometric_nd_workload(8, 8, 8, leaf_cells=8)
        roots = [s for s in range(sf.n_supernodes) if sf.sparent[s] == NO_PARENT]
        assert len(roots) == 1
        kids = sf.schildren()
        for s in range(sf.n_supernodes):
            assert len(kids[s]) <= 2

    def test_root_is_separator_of_whole_box(self):
        sf = geometric_nd_workload(10, 10, 10, leaf_cells=8)
        root = int(np.flatnonzero(sf.sparent == NO_PARENT)[0])
        # root separator: a 10x10 plane; no update rows (m = 0)
        assert sf.width(root) == 100
        assert sf.update_size(root) == 0

    def test_dof_scales_widths(self):
        s1 = geometric_nd_workload(8, 8, 8, dof=1, leaf_cells=8)
        s3 = geometric_nd_workload(8, 8, 8, dof=3, leaf_cells=8)
        assert s3.n == 3 * s1.n
        assert s3.n_supernodes == s1.n_supernodes
        mk1, mk3 = s1.mk_pairs(), s3.mk_pairs()
        assert np.array_equal(mk3, mk1 * 3)

    def test_parents_have_larger_columns(self):
        sf = geometric_nd_workload(9, 7, 5, leaf_cells=8)
        for s in range(sf.n_supernodes):
            p = sf.sparent[s]
            if p != NO_PARENT:
                assert sf.super_ptr[p] >= sf.super_ptr[s + 1]

    def test_etree_consistent_with_supernodes(self):
        sf = geometric_nd_workload(6, 6, 6, leaf_cells=8)
        # within a supernode: chain; at the end: parent supernode's first col
        for s in range(sf.n_supernodes):
            f, l = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
            for j in range(f, l - 1):
                assert sf.etree.parent[j] == j + 1
            p = sf.sparent[s]
            expect = NO_PARENT if p == NO_PARENT else sf.super_ptr[p]
            assert sf.etree.parent[l - 1] == expect

    def test_2d_grids_supported(self):
        sf = geometric_nd_workload(32, 32, 1, leaf_cells=8)
        assert sf.n_supernodes > 1
        # 2-D root separator is a line of <= 32 cells
        root = int(np.flatnonzero(sf.sparent == NO_PARENT)[0])
        assert sf.width(root) <= 32

    def test_flops_grow_superlinearly_in_3d(self):
        f1 = geometric_nd_workload(16, 16, 16).total_flops()
        f2 = geometric_nd_workload(32, 32, 32).total_flops()
        # 3-D ND flops scale ~ n^2 = 64x for 8x the unknowns
        assert f2 > 20 * f1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            geometric_nd_workload(0, 2, 2)
        with pytest.raises(ValueError):
            geometric_nd_workload(2, 2, 2, dof=0)

    def test_marked_synthetic(self):
        sf = geometric_nd_workload(4, 4, 4)
        assert sf.ordering == "synthetic-geometric"


class TestPaperCalibration:
    @pytest.mark.parametrize("spec", PAPER_WORKLOADS, ids=lambda s: s.name)
    def test_n_within_3pct_of_table2(self, spec):
        assert spec.n == pytest.approx(spec.paper_n, rel=0.03)

    @pytest.mark.parametrize("spec", PAPER_WORKLOADS, ids=lambda s: s.name)
    def test_root_front_within_12pct_of_table5(self, spec):
        assert spec.root_k == pytest.approx(spec.paper_root_k, rel=0.12)

    def test_built_root_matches_spec(self):
        spec = PAPER_WORKLOADS[0]
        sf = spec.build()
        mk = sf.mk_pairs()
        root_rows = mk[mk[:, 0] == 0]
        assert int(root_rows[:, 1].max()) == spec.root_k

    def test_lookup_by_either_name(self):
        a = paper_workload("audikw_1")
        assert a.n > 9e5
        with pytest.raises(KeyError):
            paper_workload("unknown")

    def test_small_call_dominance(self):
        # the paper's 97%-of-calls-small observation must hold for the
        # synthetic trees too
        sf = paper_workload("kyushu")
        mk = sf.mk_pairs()
        small = ((mk[:, 1] <= 500) & (mk[:, 0] <= 1000)).mean()
        assert small > 0.9


class TestScheduling:
    def test_schedulable_end_to_end(self):
        sf = geometric_nd_workload(12, 12, 12, leaf_cells=8)
        pool = make_worker_pool(2, 1)
        res = list_schedule(sf, make_policy("P1"), pool)
        assert res.makespan > 0
        assert len(res.schedule) == sf.n_supernodes

    def test_gpu_hybrid_beats_host_at_scale(self, model):
        sf = paper_workload("lmco")
        serial = list_schedule(
            sf, make_policy("P1"), make_worker_pool(1, 0, model=model),
            gang_threshold=np.inf,
        ).makespan
        gpu = list_schedule(
            sf, make_policy("P3"), make_worker_pool(1, 1, model=model),
            gang_threshold=np.inf,
        ).makespan
        assert serial / gpu > 3.0
