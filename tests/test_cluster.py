"""Cluster extension: mapping, interconnect accounting, event-driven
fan-both runtime, bitwise identity with the serial backend, and the
sharded serving fleet."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    InterconnectParams,
    ShardedSolverService,
    ShardRouter,
    cluster_factorize,
    cluster_replay,
    map_subtrees_to_ranks,
    simulate_cluster,
    subtree_flops,
    update_message_bytes,
)
from repro.matrices import grid_laplacian_2d, grid_laplacian_3d
from repro.policies import BaselineHybrid, make_policy
from repro.symbolic import symbolic_factorize
from repro.symbolic.etree import NO_PARENT
from repro.workload import geometric_nd_workload


@pytest.fixture(scope="module")
def sf():
    return symbolic_factorize(grid_laplacian_3d(8, 8, 8), ordering="nd")


@pytest.fixture(scope="module")
def wl():
    return geometric_nd_workload(24, 24, 24, leaf_cells=16)


class TestMapping:
    def test_single_rank_owns_everything(self, sf):
        owner = map_subtrees_to_ranks(sf, 1)
        assert (owner == 0).all()

    def test_every_rank_used_when_possible(self, wl):
        owner = map_subtrees_to_ranks(wl, 4)
        assert set(np.unique(owner)) == {0, 1, 2, 3}

    def test_root_on_rank_zero(self, wl):
        owner = map_subtrees_to_ranks(wl, 4)
        roots = np.flatnonzero(wl.sparent == NO_PARENT)
        assert (owner[roots] == 0).all()

    def test_subtrees_stay_local_below_split(self, wl):
        # if a node and its parent share a rank set of size one, the
        # whole subtree must be on one rank: check that cross edges are
        # few relative to tree edges
        owner = map_subtrees_to_ranks(wl, 4)
        cross = sum(
            1
            for s in range(wl.n_supernodes)
            if wl.sparent[s] != NO_PARENT and owner[wl.sparent[s]] != owner[s]
        )
        assert cross <= 16

    def test_balance(self, wl):
        owner = map_subtrees_to_ranks(wl, 2)
        w = subtree_flops(wl)
        own_flops = np.zeros(2)
        from repro.symbolic.symbolic import factor_update_flops

        for s in range(wl.n_supernodes):
            own_flops[owner[s]] += sum(
                factor_update_flops(wl.update_size(s), wl.width(s))
            )
        ratio = own_flops.max() / own_flops.min()
        assert ratio < 3.0

    def test_subtree_flops_monotone_up_the_tree(self, sf):
        t = subtree_flops(sf)
        for s in range(sf.n_supernodes):
            p = sf.sparent[s]
            if p != NO_PARENT:
                assert t[p] >= t[s]

    def test_invalid_rank_count(self, sf):
        with pytest.raises(ValueError):
            map_subtrees_to_ranks(sf, 0)


class TestInterconnect:
    def test_time_model(self):
        net = InterconnectParams(latency=1e-5, bandwidth=1e9)
        assert net.time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(2, gpus_per_rank=2)


class TestSimulation:
    def test_one_rank_matches_serial_replay(self, sf, model):
        from repro.gpu import SimulatedNode
        from repro.multifrontal.numeric import replay_factorize

        res = simulate_cluster(
            sf, make_policy("P1"), ClusterSpec(1, 0, model=model)
        )
        rp = replay_factorize(
            sf, make_policy("P1"),
            node=SimulatedNode(model=model, n_cpus=1, n_gpus=0),
        )
        assert res.makespan == pytest.approx(rp.makespan, rel=1e-9)
        assert res.comm_messages == 0

    def test_two_ranks_faster_with_comm_accounted(self, wl, model):
        serial = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(1, 0, model=model)
        )
        dist = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        assert dist.makespan < serial.makespan
        assert dist.comm_messages > 0
        assert dist.comm_bytes > 0
        assert dist.comm_seconds > 0

    def test_scaling_monotone(self, wl, model):
        times = [
            simulate_cluster(
                wl, make_policy("P1"), ClusterSpec(r, 0, model=model)
            ).makespan
            for r in (1, 2, 4)
        ]
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_gpus_accelerate_ranks(self, wl, model):
        cpu_only = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        hybrid = simulate_cluster(
            wl, BaselineHybrid(), ClusterSpec(2, 1, model=model)
        )
        assert hybrid.makespan < cpu_only.makespan

    def test_slow_network_hurts(self, wl, model):
        fast = simulate_cluster(
            wl, make_policy("P1"),
            ClusterSpec(4, 0, model=model,
                        interconnect=InterconnectParams(bandwidth=10e9)),
        )
        slow = simulate_cluster(
            wl, make_policy("P1"),
            ClusterSpec(4, 0, model=model,
                        interconnect=InterconnectParams(bandwidth=5e7)),
        )
        assert slow.makespan > fast.makespan

    def test_custom_owner_accepted_and_validated(self, sf, model):
        owner = np.zeros(sf.n_supernodes, dtype=np.int64)
        res = simulate_cluster(
            sf, make_policy("P1"), ClusterSpec(2, 0, model=model), owner=owner
        )
        assert res.comm_messages == 0
        with pytest.raises(ValueError):
            simulate_cluster(
                sf, make_policy("P1"), ClusterSpec(2, 0, model=model),
                owner=np.full(sf.n_supernodes, 5),
            )

    def test_utilization_bounded(self, wl, model):
        res = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(4, 0, model=model)
        )
        assert 0.0 < res.utilization() <= 1.05


class TestClusterRuntime:
    """The event-driven fan-both execution (repro.cluster.runtime)."""

    @pytest.fixture(scope="class")
    def serial_fp(self, lap3d_small, sf_lap3d):
        from repro.multifrontal import SparseCholeskySolver
        from repro.verify.lattice import factor_fingerprint

        solver = SparseCholeskySolver.from_symbolic(
            lap3d_small, sf_lap3d, policy="P1", backend="serial"
        )
        solver.factorize()
        return factor_fingerprint(solver.factor)

    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_factor_bitwise_identical_to_serial(
        self, lap3d_small, sf_lap3d, model, serial_fp, n_nodes
    ):
        from repro.verify.lattice import factor_fingerprint

        res = cluster_factorize(
            lap3d_small, sf_lap3d, make_policy("P1"),
            ClusterSpec(n_nodes, 1, model=model),
        )
        assert factor_fingerprint(res.factor) == serial_fp

    def test_two_runs_bit_stable(self, lap3d_small, sf_lap3d, model):
        from repro.verify.lattice import factor_fingerprint

        spec = ClusterSpec(3, 1, model=model)
        runs = [
            cluster_factorize(lap3d_small, sf_lap3d, make_policy("P4"), spec)
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].comm_bytes == runs[1].comm_bytes
        assert runs[0].comm_messages == runs[1].comm_messages
        assert runs[0].comm_seconds == runs[1].comm_seconds
        assert [t.sid for t in runs[0].schedule] == [
            t.sid for t in runs[1].schedule
        ]
        assert factor_fingerprint(runs[0].factor) == factor_fingerprint(
            runs[1].factor
        )

    def test_replay_scaling_monotone(self, wl, model):
        times = [
            cluster_replay(
                wl, make_policy("P1"), ClusterSpec(n, 0, model=model)
            ).makespan
            for n in (1, 2, 4)
        ]
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_schedule_validates(self, wl, model):
        res = cluster_replay(
            wl, make_policy("P1"), ClusterSpec(4, 0, model=model)
        )
        assert res.validate(wl) == []
        assert len(res.schedule) == wl.n_supernodes

    def test_message_ordering_and_byte_accounting(self, wl, model):
        spec = ClusterSpec(4, 0, model=model)
        res = cluster_replay(wl, make_policy("P1"), spec)
        # seq numbers are assigned in send order and strictly increase
        seqs = [m.seq for m in res.messages]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        starts = [m.send_start for m in res.messages]
        assert starts == sorted(starts)
        for m in res.messages:
            assert m.arrival == pytest.approx(
                m.send_end + spec.interconnect.latency
            )
            assert m.src != m.dst
        # total bytes = one update block per cross edge carrying m > 0 rows
        expect = sum(
            update_message_bytes(wl.update_size(s))
            for s in range(wl.n_supernodes)
            if wl.sparent[s] != NO_PARENT
            and res.owner[wl.sparent[s]] != res.owner[s]
            and wl.update_size(s) > 0
        )
        assert res.comm_bytes == expect
        assert res.comm_messages == len(res.messages)

    def test_single_node_has_no_messages(self, wl, model):
        res = cluster_replay(
            wl, make_policy("P1"), ClusterSpec(1, 0, model=model)
        )
        assert res.comm_messages == 0
        assert res.comm_bytes == 0
        assert res.messages == []

    def test_owner_validated(self, sf, model):
        spec = ClusterSpec(2, 0, model=model)
        with pytest.raises(ValueError):
            cluster_replay(
                sf, make_policy("P1"), spec,
                owner=np.full(sf.n_supernodes, 7),
            )
        with pytest.raises(ValueError):
            cluster_replay(
                sf, make_policy("P1"), spec, owner=np.zeros(3, dtype=np.int64)
            )

    def test_chrome_trace_lanes_node_major(self, wl, model):
        res = cluster_replay(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        trace = res.chrome_trace()
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        # every node0 lane strictly precedes every node1 lane
        n0 = [i for i, n in enumerate(names) if n.startswith("node0.")]
        n1 = [i for i, n in enumerate(names) if n.startswith("node1.")]
        assert n0 and n1
        assert max(n0) < min(n1)

    def test_metrics_export(self, wl, model):
        res = cluster_replay(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        m = res.metrics()
        assert m.counter("tasks") == wl.n_supernodes
        assert m.counter("comm_messages") == res.comm_messages
        rep = m.report()
        assert rep["gauges"]["comm_bytes"] == res.comm_bytes


class TestShardRouter:
    def test_deterministic_and_complete(self):
        router = ShardRouter(4)
        for key in ("a", "b", "pattern:123"):
            ranking = router.ranking(key)
            assert sorted(ranking) == [0, 1, 2, 3]
            assert ranking == ShardRouter(4).ranking(key)
            assert router.primary(key) == ranking[0]

    def test_keys_spread_across_nodes(self):
        router = ShardRouter(4)
        owners = {router.primary(f"key{i}") for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_mark_down_fails_over_and_recovers(self):
        router = ShardRouter(3)
        key = "some-pattern"
        first, second = router.ranking(key)[:2]
        assert router.route(key) == first
        router.mark_down(first)
        assert router.route(key) == second
        assert first not in router.healthy_nodes()
        router.mark_up(first)
        assert router.route(key) == first

    def test_all_down_raises(self):
        router = ShardRouter(2)
        router.mark_down(0)
        router.mark_down(1)
        with pytest.raises(RuntimeError, match="no healthy nodes"):
            router.route("k")

    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardedFleet:
    @pytest.fixture(scope="class")
    def a(self):
        return grid_laplacian_2d(9, 9)

    def test_affinity_routing_is_sticky(self, a):
        with ShardedSolverService(3, policy="P1") as fleet:
            primary = fleet.primary_for(a)
            for _ in range(3):
                out = fleet.solve(a, np.ones(a.n_rows))
                assert not out.degraded
            rep = fleet.report()
        assert rep["fleet"]["counters"][f"node{primary}.requests"] == 3
        assert rep["fleet"]["counters"]["routed"] == 3
        assert rep["fleet"]["counters"].get("failovers", 0) == 0
        assert rep["fleet"]["counters"]["interconnect_bytes"] > 0

    def test_failover_degrades_and_skips_primary_cache(self, a):
        from repro.runtime.faults import FaultInjector

        with ShardedSolverService(2, policy="P1") as probe:
            primary = probe.primary_for(a)
        fleet = ShardedSolverService(
            2, policy="P1",
            node_faults=FaultInjector(fail_sids=frozenset({primary})),
        )
        try:
            out = fleet.solve(a, np.ones(a.n_rows))
            assert out.degraded
            assert fleet.metrics.counter("failovers") == 1
            assert fleet.metrics.counter("nodes_marked_down") == 1
            # the factor lives on the replica, never the dead primary
            assert len(fleet.shards[primary].cache) == 0
            replica = 1 - primary
            assert len(fleet.shards[replica].cache) > 0
            assert fleet.router.healthy_nodes() == [replica]
        finally:
            fleet.shutdown()

    def test_whole_fleet_down_raises(self, a):
        from repro.runtime.faults import FaultInjector

        fleet = ShardedSolverService(
            2, policy="P1",
            node_faults=FaultInjector(fail_sids=frozenset({0, 1})),
        )
        try:
            with pytest.raises(RuntimeError, match="no healthy nodes"):
                fleet.solve(a, np.ones(a.n_rows))
        finally:
            fleet.shutdown()

    def test_solution_correct_across_fleet(self, a):
        with ShardedSolverService(2, policy="P1") as fleet:
            b = np.arange(1.0, a.n_rows + 1)
            out = fleet.solve(a, b)
            assert np.linalg.norm(a.matvec(out.x) - b) < 1e-8 * np.linalg.norm(b)
