"""Cluster extension: mapping, interconnect accounting, scaling."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    InterconnectParams,
    map_subtrees_to_ranks,
    simulate_cluster,
    subtree_flops,
)
from repro.matrices import grid_laplacian_3d
from repro.policies import BaselineHybrid, make_policy
from repro.symbolic import symbolic_factorize
from repro.symbolic.etree import NO_PARENT
from repro.workload import geometric_nd_workload


@pytest.fixture(scope="module")
def sf():
    return symbolic_factorize(grid_laplacian_3d(8, 8, 8), ordering="nd")


@pytest.fixture(scope="module")
def wl():
    return geometric_nd_workload(24, 24, 24, leaf_cells=16)


class TestMapping:
    def test_single_rank_owns_everything(self, sf):
        owner = map_subtrees_to_ranks(sf, 1)
        assert (owner == 0).all()

    def test_every_rank_used_when_possible(self, wl):
        owner = map_subtrees_to_ranks(wl, 4)
        assert set(np.unique(owner)) == {0, 1, 2, 3}

    def test_root_on_rank_zero(self, wl):
        owner = map_subtrees_to_ranks(wl, 4)
        roots = np.flatnonzero(wl.sparent == NO_PARENT)
        assert (owner[roots] == 0).all()

    def test_subtrees_stay_local_below_split(self, wl):
        # if a node and its parent share a rank set of size one, the
        # whole subtree must be on one rank: check that cross edges are
        # few relative to tree edges
        owner = map_subtrees_to_ranks(wl, 4)
        cross = sum(
            1
            for s in range(wl.n_supernodes)
            if wl.sparent[s] != NO_PARENT and owner[wl.sparent[s]] != owner[s]
        )
        assert cross <= 16

    def test_balance(self, wl):
        owner = map_subtrees_to_ranks(wl, 2)
        w = subtree_flops(wl)
        own_flops = np.zeros(2)
        from repro.symbolic.symbolic import factor_update_flops

        for s in range(wl.n_supernodes):
            own_flops[owner[s]] += sum(
                factor_update_flops(wl.update_size(s), wl.width(s))
            )
        ratio = own_flops.max() / own_flops.min()
        assert ratio < 3.0

    def test_subtree_flops_monotone_up_the_tree(self, sf):
        t = subtree_flops(sf)
        for s in range(sf.n_supernodes):
            p = sf.sparent[s]
            if p != NO_PARENT:
                assert t[p] >= t[s]

    def test_invalid_rank_count(self, sf):
        with pytest.raises(ValueError):
            map_subtrees_to_ranks(sf, 0)


class TestInterconnect:
    def test_time_model(self):
        net = InterconnectParams(latency=1e-5, bandwidth=1e9)
        assert net.time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(2, gpus_per_rank=2)


class TestSimulation:
    def test_one_rank_matches_serial_replay(self, sf, model):
        from repro.gpu import SimulatedNode
        from repro.multifrontal.numeric import replay_factorize

        res = simulate_cluster(
            sf, make_policy("P1"), ClusterSpec(1, 0, model=model)
        )
        rp = replay_factorize(
            sf, make_policy("P1"),
            node=SimulatedNode(model=model, n_cpus=1, n_gpus=0),
        )
        assert res.makespan == pytest.approx(rp.makespan, rel=1e-9)
        assert res.comm_messages == 0

    def test_two_ranks_faster_with_comm_accounted(self, wl, model):
        serial = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(1, 0, model=model)
        )
        dist = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        assert dist.makespan < serial.makespan
        assert dist.comm_messages > 0
        assert dist.comm_bytes > 0
        assert dist.comm_seconds > 0

    def test_scaling_monotone(self, wl, model):
        times = [
            simulate_cluster(
                wl, make_policy("P1"), ClusterSpec(r, 0, model=model)
            ).makespan
            for r in (1, 2, 4)
        ]
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_gpus_accelerate_ranks(self, wl, model):
        cpu_only = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(2, 0, model=model)
        )
        hybrid = simulate_cluster(
            wl, BaselineHybrid(), ClusterSpec(2, 1, model=model)
        )
        assert hybrid.makespan < cpu_only.makespan

    def test_slow_network_hurts(self, wl, model):
        fast = simulate_cluster(
            wl, make_policy("P1"),
            ClusterSpec(4, 0, model=model,
                        interconnect=InterconnectParams(bandwidth=10e9)),
        )
        slow = simulate_cluster(
            wl, make_policy("P1"),
            ClusterSpec(4, 0, model=model,
                        interconnect=InterconnectParams(bandwidth=5e7)),
        )
        assert slow.makespan > fast.makespan

    def test_custom_owner_accepted_and_validated(self, sf, model):
        owner = np.zeros(sf.n_supernodes, dtype=np.int64)
        res = simulate_cluster(
            sf, make_policy("P1"), ClusterSpec(2, 0, model=model), owner=owner
        )
        assert res.comm_messages == 0
        with pytest.raises(ValueError):
            simulate_cluster(
                sf, make_policy("P1"), ClusterSpec(2, 0, model=model),
                owner=np.full(sf.n_supernodes, 5),
            )

    def test_utilization_bounded(self, wl, model):
        res = simulate_cluster(
            wl, make_policy("P1"), ClusterSpec(4, 0, model=model)
        )
        assert 0.0 < res.utilization() <= 1.05
