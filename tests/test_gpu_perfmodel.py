"""The calibrated performance model: rates, crossovers, quantization."""

import numpy as np
import pytest

from repro.gpu import TESLA_T10, XEON_5160_CORE, tesla_t10_model
from repro.gpu.perfmodel import KernelParams, TransferParams


@pytest.fixture(scope="module")
def m():
    return tesla_t10_model()


class TestCalibrationTargets:
    """The Table III / Figure 7/8 numbers the model is built to hit."""

    def test_cpu_stabilized_rates_match_table3(self, m):
        assert m.cpu["potrf"].peak == pytest.approx(8.84e9)
        assert m.cpu["trsm"].peak == pytest.approx(9.24e9)
        assert m.cpu["syrk"].peak == pytest.approx(10.02e9)

    def test_gpu_stabilized_rates_match_table3(self, m):
        assert m.gpu["trsm"].peak == pytest.approx(153.7e9)
        assert m.gpu["syrk"].peak == pytest.approx(159.69e9)

    def test_percent_peak_matches_table3(self, m):
        # paper: potrf 73.7%, trsm 76.99%, syrk 83.49% of the 12 GF/s core
        assert m.percent_peak("cpu", "potrf") == pytest.approx(73.7, abs=0.5)
        assert m.percent_peak("cpu", "trsm") == pytest.approx(76.99, abs=0.5)
        assert m.percent_peak("cpu", "syrk") == pytest.approx(83.49, abs=0.5)
        # GPU: trsm 24.63%, syrk 25.59% of 624 GF/s
        assert m.percent_peak("gpu", "trsm") == pytest.approx(24.63, abs=0.5)
        assert m.percent_peak("gpu", "syrk") == pytest.approx(25.59, abs=0.5)

    def test_trsm_crossover_no_copy_near_4e5(self, m):
        # Figure 7: GPU overtakes CPU around 4e5 operations (no copies)
        def diff(k, mm):
            return m.kernel_time("cpu", "trsm", m=mm, k=k) - m.kernel_time(
                "gpu", "trsm", m=mm, k=k
            )
        # square-ish shapes: below ~2e5 CPU wins, above ~2e6 GPU wins
        assert diff(70, 40) < 0      # 2e5 ops: CPU faster
        assert diff(160, 100) > 0    # 2.6e6 ops: GPU faster

    def test_syrk_crossover_no_copy_near_1p5e5(self, m):
        def diff(k, mm):
            return m.kernel_time("cpu", "syrk", m=mm, k=k) - m.kernel_time(
                "gpu", "syrk", m=mm, k=k
            )
        assert diff(20, 50) < 0       # 5e4 ops: CPU faster
        assert diff(300, 60) > 0      # 1e6 ops: GPU faster

    def test_gpu_rate_saturates_to_peak(self, m):
        small = m.kernel_rate("gpu", "syrk", m=100, k=32)
        large = m.kernel_rate("gpu", "syrk", m=8000, k=4000)
        assert small < 0.5 * m.gpu["syrk"].peak
        assert large > 0.85 * m.gpu["syrk"].peak

    def test_cpu_rate_ramps_with_size(self, m):
        small = m.kernel_rate("cpu", "syrk", m=30, k=10)
        large = m.kernel_rate("cpu", "syrk", m=3000, k=500)
        assert small < large <= m.cpu["syrk"].peak


class TestMechanics:
    def test_zero_work_is_free(self, m):
        assert m.kernel_time("cpu", "syrk", m=0, k=10) == 0.0

    def test_unknown_kernel_rejected(self, m):
        with pytest.raises(ValueError):
            m.kernel_time("cpu", "axpy", m=1, k=1)

    def test_tile_quantization_charges_padded_flops(self, m):
        # m = 321 pads to 352 on the GPU (tile 32): identical charge as
        # m = 352 (the efficiency term depends only on k for syrk)
        t321 = m.kernel_time("gpu", "syrk", m=321, k=64)
        t352 = m.kernel_time("gpu", "syrk", m=352, k=64)
        assert t321 == pytest.approx(t352, rel=1e-12)
        # the CPU charges nominal flops: strictly increasing in m
        assert m.kernel_time("cpu", "syrk", m=321, k=64) < m.kernel_time(
            "cpu", "syrk", m=352, k=64
        )

    def test_quantization_makes_rate_jagged(self, m):
        # nominal rate dips just past tile boundaries (Fig. 8's jagged curve)
        r32 = m.kernel_rate("gpu", "syrk", m=640, k=32)
        r33 = m.kernel_rate("gpu", "syrk", m=640, k=33)
        assert r33 < r32

    def test_dp_model_is_8x_slower_at_peak(self, m):
        dp = m.with_precision("dp")
        assert dp.gpu["syrk"].peak == pytest.approx(m.gpu["syrk"].peak / 8)
        assert dp.gpu_word == 8 and m.gpu_word == 4

    def test_with_precision_validates(self, m):
        with pytest.raises(ValueError):
            m.with_precision("half")

    def test_jitter_bounded_and_deterministic(self):
        m1 = tesla_t10_model(jitter=0.1)
        t_a = m1.kernel_time("gpu", "syrk", m=100, k=100)
        t_b = m1.kernel_time("gpu", "syrk", m=100, k=100)
        assert t_a == t_b
        clean = tesla_t10_model().kernel_time("gpu", "syrk", m=100, k=100)
        assert abs(t_a / clean - 1.0) <= 0.1 + 1e-12

    def test_transfer_time_model(self, m):
        t = m.transfer_time(1.8e9, pinned=True)
        assert t == pytest.approx(1.0 + m.transfer.latency, rel=1e-6)
        assert m.transfer_time(1000, pinned=False) > m.transfer_time(1000, pinned=True)

    def test_pinned_alloc_expensive(self, m):
        # paper V-A2: allocation is prohibitive relative to small copies
        alloc = m.transfer.pinned_alloc_time(64 * 1024)
        copy = m.transfer_time(64 * 1024, pinned=True)
        assert alloc > 5 * copy

    def test_host_memory_time_linear(self, m):
        assert m.host_memory_time(2e9) == pytest.approx(2 * m.host_memory_time(1e9))


class TestSpecs:
    def test_table1_values(self):
        assert TESLA_T10.peak_sp_gflops == 624.0
        assert TESLA_T10.peak_dp_gflops == 78.0
        assert TESLA_T10.scalar_cores == 240
        assert TESLA_T10.memory_bytes == 4 * 2**30
        rows = dict(TESLA_T10.table_rows())
        assert rows["Clock (GHz)"] == "1.3"
        assert "30x8" in rows["Scalar Cores"]

    def test_host_peaks(self):
        assert XEON_5160_CORE.peak_dp_gflops == 12.0
        assert XEON_5160_CORE.peak_sp_gflops == 24.0

    def test_kernel_params_efficiency(self):
        p = KernelParams(1e-6, 1e9, narrow_half=50)
        assert p.efficiency(50) == pytest.approx(0.5)
        assert KernelParams(1e-6, 1e9).efficiency(3) == 1.0

    def test_transfer_params_time(self):
        tp = TransferParams(latency=1e-5, bw_pageable=1e9, bw_pinned=2e9)
        assert tp.time(2e9, pinned=True) == pytest.approx(1.0 + 1e-5)
        assert tp.time(2e9, pinned=False) == pytest.approx(2.0 + 1e-5)
