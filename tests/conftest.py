"""Shared fixtures: small problems, the calibrated model, cached symbolic
factorizations (symbolic analysis is the slowest reusable step).

Also registers the single hypothesis profile for the whole suite:
``REPRO_HYPOTHESIS_EXAMPLES`` overrides ``max_examples`` (e.g. crank it
up in a nightly job, or set it to 5 for a quick local run).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.gpu.perfmodel import tesla_t10_model
from repro.matrices import elasticity_3d, grid_laplacian_2d, grid_laplacian_3d, random_spd
from repro.symbolic import symbolic_factorize

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is optional
    pass
else:
    settings.register_profile(
        "repro",
        deadline=None,
        max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "25")),
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")


@pytest.fixture(scope="session")
def model():
    return tesla_t10_model()


@pytest.fixture(scope="session")
def lap2d_small():
    return grid_laplacian_2d(10, 10)


@pytest.fixture(scope="session")
def lap3d_small():
    return grid_laplacian_3d(7, 7, 7)


@pytest.fixture(scope="session")
def elast_small():
    return elasticity_3d(4, 4, 4)


@pytest.fixture(scope="session")
def rand_spd_small():
    return random_spd(120, seed=3)


@pytest.fixture(scope="session")
def sf_lap3d(lap3d_small):
    return symbolic_factorize(lap3d_small, ordering="nd")


@pytest.fixture(scope="session")
def sf_elast(elast_small):
    return symbolic_factorize(elast_small, ordering="amd")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
