"""Partial factorization / Schur complement."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d, grid_laplacian_3d, random_spd
from repro.multifrontal import partial_factorize
from repro.policies import BaselineHybrid, make_policy
from repro.symbolic import symbolic_factorize


def dense_schur(a, perm, ne):
    p = a.permute_symmetric(perm).to_dense()
    a11, a12 = p[:ne, :ne], p[:ne, ne:]
    a21, a22 = p[ne:, :ne], p[ne:, ne:]
    return a22 - a21 @ np.linalg.solve(a11, a12)


class TestSchurCorrectness:
    @pytest.mark.parametrize("frac", [0.25, 0.5, 0.75])
    def test_matches_dense_reference(self, frac):
        a = grid_laplacian_2d(7, 7)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), int(frac * sf.n))
        ref = dense_schur(a, sf.perm, pf.n_eliminated)
        assert np.abs(pf.schur - ref).max() < 1e-10

    def test_random_spd(self):
        a = random_spd(80, seed=7)
        sf = symbolic_factorize(a, ordering="amd")
        pf = partial_factorize(a, sf, make_policy("P1"), 40)
        ref = dense_schur(a, sf.perm, pf.n_eliminated)
        assert np.abs(pf.schur - ref).max() < 1e-9

    def test_schur_is_spd(self):
        # Schur complements of SPD matrices are SPD
        a = grid_laplacian_3d(5, 5, 5)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n // 2)
        w = np.linalg.eigvalsh((pf.schur + pf.schur.T) / 2)
        assert w.min() > 0

    def test_gpu_policy_fp32_schur(self):
        a = grid_laplacian_2d(8, 8)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P3"), sf.n // 2)
        ref = dense_schur(a, sf.perm, pf.n_eliminated)
        err = np.abs(pf.schur - ref).max()
        assert err < 1e-2            # fp32 ballpark
        assert err > 0               # and really touched by fp32

    def test_hybrid_policy(self):
        a = grid_laplacian_3d(5, 5, 5)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, BaselineHybrid(), sf.n // 3)
        ref = dense_schur(a, sf.perm, pf.n_eliminated)
        assert np.abs(pf.schur - ref).max() < 1e-2


class TestBoundaries:
    def test_zero_elimination(self):
        a = grid_laplacian_2d(5, 5)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), 0)
        assert pf.n_eliminated == 0
        assert np.allclose(
            pf.schur, a.permute_symmetric(sf.perm).to_dense()
        )
        assert not pf.records

    def test_full_elimination_gives_empty_schur(self):
        a = grid_laplacian_2d(5, 5)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n)
        assert pf.n_eliminated == sf.n
        assert pf.schur_order == 0
        assert len(pf.records) == sf.n_supernodes

    def test_boundary_snaps_to_supernode_edge(self):
        a = grid_laplacian_2d(6, 6)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n // 2)
        assert pf.n_eliminated in set(sf.super_ptr.tolist())
        assert pf.n_eliminated <= sf.n // 2

    def test_out_of_range_rejected(self):
        a = grid_laplacian_2d(4, 4)
        sf = symbolic_factorize(a, ordering="nd")
        with pytest.raises(ValueError):
            partial_factorize(a, sf, make_policy("P1"), sf.n + 1)

    def test_timing_recorded(self):
        a = grid_laplacian_2d(6, 6)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n // 2)
        assert pf.makespan > 0
        assert all(r.end >= r.start for r in pf.records)


class TestSolveWithSchur:
    def test_matches_direct_solve(self):
        from repro.multifrontal import factorize_numeric, solve_factored
        from repro.multifrontal.schur import solve_with_schur

        a = grid_laplacian_3d(5, 5, 5)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n // 2)
        nf = factorize_numeric(a, sf, make_policy("P1"))
        rng = np.random.default_rng(3)
        b = rng.normal(size=a.n_rows)
        x_dd = solve_with_schur(pf, sf, b)
        x_full = solve_factored(nf, b)
        assert np.abs(x_dd - x_full).max() < 1e-9

    def test_zero_elimination_degenerates_to_dense_solve(self):
        from repro.multifrontal.schur import solve_with_schur

        a = grid_laplacian_2d(4, 4)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), 0)
        b = np.ones(a.n_rows)
        x = solve_with_schur(pf, sf, b)
        assert np.abs(a.matvec(x) - b).max() < 1e-10

    def test_full_elimination_unsupported_shape_guard(self):
        from repro.multifrontal.schur import solve_with_schur

        a = grid_laplacian_2d(4, 4)
        sf = symbolic_factorize(a, ordering="nd")
        pf = partial_factorize(a, sf, make_policy("P1"), sf.n // 2)
        with pytest.raises(ValueError):
            solve_with_schur(pf, sf, np.ones(3))
