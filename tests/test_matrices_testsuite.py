"""The Table II analog suite."""

import numpy as np
import pytest

from repro.matrices import TEST_MATRICES, load_test_matrix


def test_five_matrices_like_the_paper():
    assert len(TEST_MATRICES) == 5
    assert {s.paper_name for s in TEST_MATRICES} == {
        "audikw_1", "kyushu", "lmco", "nastran-b", "sgi_1M",
    }


def test_load_by_either_name():
    a = load_test_matrix("lmco_s")
    b = load_test_matrix("lmco")
    assert a.n_rows == b.n_rows


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        load_test_matrix("bogus")


@pytest.mark.parametrize("spec", TEST_MATRICES, ids=lambda s: s.name)
def test_matrices_are_symmetric_diagonally_dominantish(spec):
    a = spec.build()
    assert a.is_structurally_symmetric()
    # SPD sanity without an O(n^3) eigendecomposition: positive diagonal
    # and positive quadratic form on random probes
    assert (a.diagonal() > 0).all()
    rng = np.random.default_rng(0)
    for _ in range(3):
        v = rng.normal(size=a.n_rows)
        assert v @ a.matvec(v) > 0


def test_scalar_vs_vector_analogs():
    # elasticity analogs have 3 dof per node => n divisible by 3 and a
    # higher nnz/n ratio than the scalar Laplacians, matching Table II's
    # contrast between audikw_1/lmco/nastran-b and kyushu
    by_name = {s.name: s.build() for s in TEST_MATRICES}
    for name in ("audi_s", "lmco_s", "nastran_s"):
        assert by_name[name].n_rows % 3 == 0
    kyushu_ratio = by_name["kyushu_s"].nnz / by_name["kyushu_s"].n_rows
    audi_ratio = by_name["audi_s"].nnz / by_name["audi_s"].n_rows
    assert audi_ratio > 2 * kyushu_ratio


def test_paper_metadata_recorded():
    for spec in TEST_MATRICES:
        assert spec.paper_n > 1e5
        assert spec.paper_nnz > 1e7
        assert spec.description
