"""Dense kernels and the Figure-9 blocked panel algorithm."""

import numpy as np
import pytest

from repro.dense import (
    KernelCounts,
    blocked_cholesky_panels,
    blocked_factor_update,
    gemm,
    potrf,
    potrf_flops,
    syrk,
    syrk_flops,
    trsm_flops,
    trsm_right_lower,
)
from repro.dense.blocked import HostKernels, default_panel_width
from repro.dense.kernels import NotPositiveDefiniteError, gemm_flops


def spd(n, rng, shift=None):
    b = rng.normal(size=(n, n + 5))
    return b @ b.T + (shift if shift is not None else n) * np.eye(n)


class TestKernels:
    def test_potrf_reconstructs(self, rng):
        a = spd(12, rng)
        l = potrf(a)
        assert np.allclose(l @ l.T, a)
        assert np.allclose(np.triu(l, 1), 0.0)

    def test_potrf_rejects_indefinite(self):
        with pytest.raises(NotPositiveDefiniteError):
            potrf(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_potrf_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError):
            potrf(rng.normal(size=(3, 4)))

    def test_trsm_solves(self, rng):
        l = potrf(spd(9, rng))
        b = rng.normal(size=(14, 9))
        x = trsm_right_lower(b, l)
        assert np.allclose(x @ l.T, b)

    def test_trsm_blocked_matches_unblocked(self, rng):
        # exercise the k > block-size path
        l = potrf(spd(70, rng))
        b = rng.normal(size=(5, 70))
        x = trsm_right_lower(b, l)
        assert np.allclose(x @ l.T, b, atol=1e-8)

    def test_trsm_shape_checks(self, rng):
        l = potrf(spd(4, rng))
        with pytest.raises(ValueError):
            trsm_right_lower(rng.normal(size=(3, 5)), l)
        with pytest.raises(ValueError):
            trsm_right_lower(rng.normal(size=(3, 4)), rng.normal(size=(4, 3)))

    def test_syrk_in_place(self, rng):
        x = rng.normal(size=(6, 3))
        c = np.eye(6)
        out = syrk(c, x)
        assert out is c
        assert np.allclose(c, np.eye(6) - x @ x.T)

    def test_gemm_alpha(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(3, 5))
        c = np.zeros((4, 5))
        gemm(c, a, b, alpha=2.0)
        assert np.allclose(c, 2 * a @ b)

    def test_flop_formulas(self):
        assert potrf_flops(6) == pytest.approx(72.0)
        assert trsm_flops(10, 3) == pytest.approx(90.0)
        assert syrk_flops(10, 3) == pytest.approx(300.0)
        assert gemm_flops(2, 3, 4) == pytest.approx(48.0)

    def test_kernel_counts_accumulate(self, rng):
        counts = KernelCounts()
        l = potrf(spd(5, rng), counts=counts)
        trsm_right_lower(rng.normal(size=(7, 5)), l, counts=counts)
        syrk(np.eye(7), rng.normal(size=(7, 5)), counts=counts)
        assert counts.calls == {"potrf": 1, "trsm": 1, "syrk": 1}
        assert counts.total_flops() == pytest.approx(
            potrf_flops(5) + trsm_flops(7, 5) + syrk_flops(7, 5)
        )


class TestBlockedPanels:
    @pytest.mark.parametrize("s,k,w", [(30, 12, 4), (25, 25, 8), (40, 17, 17), (33, 10, 64)])
    def test_matches_reference_cholesky(self, s, k, w, rng):
        f = spd(s, rng)
        ref_l = np.linalg.cholesky(f)
        ref_u = f[k:, k:] - ref_l[k:, :k] @ ref_l[k:, :k].T
        work = f.copy()
        blocked_cholesky_panels(work, k, w, HostKernels())
        assert np.allclose(np.tril(work[:k, :k]), ref_l[:k, :k])
        assert np.allclose(work[k:, :k], ref_l[k:, :k])
        assert np.allclose(work[k:, k:], ref_u)

    def test_upper_triangle_zeroed(self, rng):
        work = spd(10, rng)
        blocked_cholesky_panels(work, 6, 3, HostKernels())
        assert np.allclose(np.triu(work[:6, :6], 1), 0.0)

    def test_full_factor_when_k_equals_s(self, rng):
        f = spd(20, rng)
        ref = np.linalg.cholesky(f)
        work = f.copy()
        blocked_cholesky_panels(work, 20, 6, HostKernels())
        assert np.allclose(np.tril(work), ref)

    def test_blocked_factor_update_views(self, rng):
        f = spd(15, rng)
        l1, l2, u = blocked_factor_update(f.copy(), 5, HostKernels())
        assert l1.shape == (5, 5)
        assert l2.shape == (10, 5)
        assert u.shape == (10, 10)

    def test_invalid_args(self, rng):
        f = spd(8, rng)
        with pytest.raises(ValueError):
            blocked_cholesky_panels(f, 0, 4, HostKernels())
        with pytest.raises(ValueError):
            blocked_cholesky_panels(f, 4, 0, HostKernels())
        with pytest.raises(ValueError):
            blocked_cholesky_panels(rng.normal(size=(4, 5)), 2, 2, HostKernels())

    def test_kernel_counts_flops_conserved(self, rng):
        # total flops of the panel decomposition ~ the monolithic counts
        s, k = 60, 40
        counts = KernelCounts()
        blocked_cholesky_panels(spd(s, rng), k, 10, HostKernels(counts))
        m = s - k
        expected = potrf_flops(k) + trsm_flops(m, k) + syrk_flops(m, k)
        assert counts.total_flops() == pytest.approx(expected, rel=0.35)

    def test_default_panel_width_monotone(self):
        widths = [default_panel_width(k) for k in (10, 100, 1000, 10000, 10**6)]
        assert widths == sorted(widths)
        assert min(widths) >= 64
        assert max(widths) <= 512
