"""Analysis layer: binning, record aggregation, rendering."""

import numpy as np
import pytest

from repro.analysis import (
    GridBinner,
    ascii_heatmap,
    ascii_policy_map,
    component_fractions,
    component_times,
    format_table,
    rate_series,
    time_fraction_grid,
)
from repro.multifrontal.numeric import FURecord


def make_record(m, k, policy="P1", components=None, start=0.0, end=1.0):
    from repro.symbolic.symbolic import factor_update_flops

    return FURecord(
        sid=0, m=m, k=k, policy=policy, start=start, end=end,
        components=components or {"potrf": 0.1, "trsm": 0.2, "syrk": 0.3},
        flops=factor_update_flops(m, k),
    )


class TestGridBinner:
    def test_bin_index_clamps(self):
        b = GridBinner(bin_size=10, extent=100)
        bm, bk = b.bin_index([5, 95, 500], [0, 99, 1000])
        assert list(bm) == [0, 9, 9]
        assert list(bk) == [0, 9, 9]

    def test_accumulate_layout_k_rows(self):
        b = GridBinner(bin_size=10, extent=30)
        grid = b.accumulate([25], [5], [2.0])   # m-bin 2, k-bin 0
        assert grid[0, 2] == 2.0
        assert grid.sum() == 2.0

    def test_fraction_normalizes(self):
        b = GridBinner(bin_size=10, extent=20)
        grid = b.fraction([1, 11], [1, 11], [1.0, 3.0])
        assert grid.sum() == pytest.approx(1.0)
        assert grid[1, 1] == pytest.approx(0.75)

    def test_fraction_empty(self):
        b = GridBinner(bin_size=10, extent=20)
        grid = b.fraction([], [], [])
        assert grid.sum() == 0.0

    def test_majority_label(self):
        b = GridBinner(bin_size=10, extent=20)
        lab = b.majority_label([1, 2, 15], [1, 1, 15], ["P1", "P1", "P3"])
        assert lab[0, 0] == "P1"
        assert lab[1, 1] == "P3"
        assert lab[0, 1] == ""

    def test_mean_with_empty_bins(self):
        b = GridBinner(bin_size=10, extent=20)
        g = b.mean([1, 1], [1, 1], [2.0, 4.0])
        assert g[0, 0] == pytest.approx(3.0)
        assert np.isnan(g[1, 1])


class TestInstrument:
    def test_time_fraction_grid_sums_to_one(self):
        records = [make_record(10, 5), make_record(500, 100)]
        grid = time_fraction_grid(records, GridBinner(bin_size=100, extent=1000))
        assert grid.sum() == pytest.approx(1.0)

    def test_copy_excluded_variant(self):
        records = [
            make_record(10, 5, components={"syrk": 1.0, "copy": 9.0}),
            make_record(900, 900, components={"syrk": 1.0}),
        ]
        binner = GridBinner(bin_size=500, extent=1000)
        with_copy = time_fraction_grid(records, binner, include_copy=True)
        without = time_fraction_grid(records, binner, include_copy=False)
        # the small call dominates only when copies are counted (Fig. 2b vs 2c)
        assert with_copy[0, 0] > 0.5
        assert without[0, 0] == pytest.approx(0.5)

    def test_component_times_keys(self):
        out = component_times([make_record(10, 5)])
        assert set(out) == {"ops", "potrf", "trsm", "syrk", "copy"}
        assert out["ops"][0] > 0

    def test_component_fractions_sum_to_one(self):
        out = component_fractions([make_record(10, 5)])
        total = out["potrf"][0] + out["trsm"][0] + out["syrk"][0] + out["copy"][0]
        assert total == pytest.approx(1.0)

    def test_rate_series_monotone_input(self):
        ops = np.logspace(3, 9, 50)
        secs = 1e-5 + ops / 1e10   # latency + throughput
        centers, rates = rate_series(ops, secs, n_points=10)
        assert (np.diff(rates) > 0).all()   # saturating curve rises
        assert rates[-1] < 1e10

    def test_rate_series_empty(self):
        c, r = rate_series(np.array([]), np.array([]))
        assert c.size == r.size == 0


class TestRendering:
    def test_heatmap_contains_range(self):
        txt = ascii_heatmap(np.array([[0.0, 1.0]]), title="T")
        assert "T" in txt and "range" in txt

    def test_heatmap_handles_nan(self):
        txt = ascii_heatmap(np.array([[np.nan, 1.0]]))
        assert txt  # no crash; NaN renders blank

    def test_policy_map_legend(self):
        grid = np.array([["P1", "P3"], ["", "P4"]], dtype=object)
        txt = ascii_policy_map(grid, title="map")
        assert "legend: P1, P3, P4" in txt
        assert "1" in txt and "3" in txt and "4" in txt

    def test_format_table_alignment(self):
        txt = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22.25]], title="t",
            float_fmt="{:.2f}",
        )
        lines = txt.splitlines()
        assert lines[0] == "t"
        assert "1.50" in txt and "22.25" in txt

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])
