"""The dynamic event-driven runtime: events, stealing, admission, faults."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d, grid_laplacian_3d
from repro.multifrontal import solve_factored
from repro.parallel import list_schedule, make_worker_pool, parallel_factorize
from repro.policies import make_policy
from repro.runtime import (
    EventQueue,
    FaultInjector,
    ReadyDeque,
    dynamic_schedule,
    schedule_peak_update_bytes,
)
from repro.symbolic import symbolic_factorize
from repro.symbolic.stack import estimate_peak_update_bytes


@pytest.fixture(scope="module")
def problem():
    a = grid_laplacian_3d(6, 6, 6)
    return a, symbolic_factorize(a, ordering="nd")


@pytest.fixture(scope="module")
def lap2d_32():
    a = grid_laplacian_2d(32, 32)
    return a, symbolic_factorize(a, ordering="nd")


class TestEventPrimitives:
    def test_event_queue_orders_by_time_then_seq(self):
        q = EventQueue()
        q.push(2.0, "late")
        q.push(1.0, "a")
        q.push(1.0, "b")  # same time: FIFO by insertion
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "late"]
        assert q.clock.now == 2.0

    def test_clock_never_rewinds(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.clock.advance_to(4.0)

    def test_deque_pops_highest_priority(self):
        d = ReadyDeque()
        d.push(1.0, 0, "low")
        d.push(9.0, 1, "high")
        d.push(5.0, 2, "mid")
        assert d.pop_front() == "high"
        assert d.pop_front() == "mid"

    def test_steal_back_takes_low_priority_half(self):
        d = ReadyDeque()
        for i, pr in enumerate([9.0, 7.0, 5.0, 3.0, 1.0]):
            d.push(pr, i, f"t{i}")
        loot = d.steal_back(2)
        assert loot == ["t3", "t4"]  # the lowest-priority tasks
        assert len(d) == 3
        assert d.pop_front() == "t0"


class TestDynamicSchedule:
    def test_dependencies_respected(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(3, 0))
        finish = {t.sid: t.end for t in res.schedule}
        start = {t.sid: t.start for t in res.schedule}
        kids = sf.schildren()
        for s in range(sf.n_supernodes):
            for c in kids[s]:
                assert finish[c] <= start[s] + 1e-15

    def test_every_supernode_exactly_once(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(4, 0))
        sids = sorted(t.sid for t in res.schedule)
        assert sids == list(range(sf.n_supernodes))

    def test_single_worker_equals_serial_sum(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(1, 0))
        assert res.stats.steals == 0
        assert res.makespan == pytest.approx(
            sum(t.elapsed for t in res.schedule)
        )

    def test_deterministic_across_runs(self, problem):
        _, sf = problem
        runs = [
            dynamic_schedule(sf, make_policy("P1"), make_worker_pool(4, 0))
            for _ in range(3)
        ]
        first = [(t.sid, t.worker, t.start, t.end) for t in runs[0].schedule]
        for r in runs[1:]:
            assert [(t.sid, t.worker, t.start, t.end) for t in r.schedule] == first
            assert r.stats == runs[0].stats

    def test_workers_bootstrap_by_stealing(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(4, 0))
        assert res.stats.steals >= 1
        assert res.stats.stolen_tasks >= res.stats.steals
        # stealing actually spread the work
        assert len({t.worker for t in res.schedule}) == 4

    def test_makespan_competitive_with_static(self, problem):
        _, sf = problem
        pool = make_worker_pool(4, 0)
        static = list_schedule(sf, make_policy("P1"), pool,
                               gang_threshold=np.inf)
        dyn = dynamic_schedule(sf, make_policy("P1"), pool)
        assert dyn.makespan <= 1.3 * static.makespan

    def test_worker_busy_accounting(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(3, 0))
        per_worker = [0.0] * 3
        for t in res.schedule:
            per_worker[t.worker] += t.elapsed
        assert per_worker == pytest.approx(res.worker_busy)


class TestMemoryAdmission:
    def test_budget_honored_where_static_exceeds_it(self, lap2d_32):
        _, sf = lap2d_32
        pool = make_worker_pool(4, 0)
        static = list_schedule(sf, make_policy("P1"), pool,
                               gang_threshold=np.inf)
        static_peak = schedule_peak_update_bytes(sf, static.schedule)
        serial_peak = estimate_peak_update_bytes(sf)
        budget = int(0.9 * static_peak)
        assert serial_peak < budget < static_peak  # scenario is meaningful
        res = dynamic_schedule(
            sf, make_policy("P1"), pool, memory_budget=budget
        )
        assert res.stats.peak_admitted_bytes <= budget
        assert res.stats.forced_admissions == 0
        assert res.stats.admission_deferrals > 0
        assert len(res.schedule) == sf.n_supernodes

    def test_unconstrained_run_has_no_deferrals(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(4, 0))
        assert res.stats.admission_deferrals == 0
        assert res.stats.forced_admissions == 0

    def test_infeasible_budget_forces_completion(self, lap2d_32):
        _, sf = lap2d_32
        res = dynamic_schedule(
            sf, make_policy("P1"), make_worker_pool(4, 0), memory_budget=1
        )
        assert len(res.schedule) == sf.n_supernodes
        assert res.stats.forced_admissions > 0

    def test_serial_budget_peak_matches_liu_accounting(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(1, 0))
        assert schedule_peak_update_bytes(sf, res.schedule) == \
            res.stats.peak_stack_bytes


class TestFaults:
    def _fail_sids(self, sf, n=3):
        mk = [(s, sf.update_size(s) * sf.width(s))
              for s in range(sf.n_supernodes)]
        return frozenset(s for s, _ in sorted(mk, key=lambda t: -t[1])[:n])

    def test_targeted_failures_degrade_not_raise(self, problem):
        _, sf = problem
        fail = self._fail_sids(sf)
        inj = FaultInjector(fail_sids=fail, seed=1)
        res = dynamic_schedule(sf, make_policy("P3"), make_worker_pool(2, 2),
                               faults=inj)
        assert res.degraded
        assert res.degraded_sids == fail
        assert res.stats.degraded_tasks == len(fail)
        assert res.stats.kernel_retries >= len(fail)
        assert len(res.schedule) == sf.n_supernodes
        # the degraded fronts ran on the host path
        policies = {t.sid: t.policy for t in res.schedule}
        assert all(policies[s] == "P1" for s in fail)

    def test_transfer_stalls_counted_and_slow(self, problem):
        _, sf = problem
        clean = dynamic_schedule(sf, make_policy("P3"), make_worker_pool(2, 2))
        inj = FaultInjector(transfer_stall_rate=0.3, seed=7)
        res = dynamic_schedule(sf, make_policy("P3"), make_worker_pool(2, 2),
                               faults=inj)
        assert res.stats.transfer_stalls > 0
        assert res.stats.transfer_stalls == inj.stats.transfer_stalls
        assert res.makespan > clean.makespan

    def test_fault_outcomes_deterministic(self, problem):
        _, sf = problem
        runs = [
            dynamic_schedule(
                sf, make_policy("P3"), make_worker_pool(2, 2),
                faults=FaultInjector(kernel_failure_rate=0.15, seed=5),
            )
            for _ in range(2)
        ]
        assert runs[0].degraded_sids == runs[1].degraded_sids
        assert runs[0].makespan == runs[1].makespan

    def test_cpu_policy_never_faults(self, problem):
        _, sf = problem
        inj = FaultInjector(kernel_failure_rate=1.0, seed=0)
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(2, 2),
                               faults=inj)
        assert not res.degraded  # P1 never touches the device


class TestParallelFactorizeDynamic:
    def test_bitwise_identical_to_static(self, problem):
        a, sf = problem
        pol = make_policy("P2")
        rs = parallel_factorize(a, sf, pol, make_worker_pool(2, 2),
                                backend="static")
        rd = parallel_factorize(a, sf, pol, make_worker_pool(2, 2),
                                backend="dynamic")
        for ps, pd in zip(rs.factor.panels, rd.factor.panels):
            assert np.array_equal(ps, pd)

    def test_degraded_factor_still_solves(self, problem):
        a, sf = problem
        fail = TestFaults()._fail_sids(sf)
        res = parallel_factorize(
            a, sf, make_policy("P3"), make_worker_pool(2, 2),
            backend="dynamic", faults=FaultInjector(fail_sids=fail, seed=2),
        )
        assert res.degraded
        b = np.ones(a.n_rows)
        x = solve_factored(res.factor, b)
        # raw solve carries the GPU policies' single-precision error ...
        assert np.abs(a.matvec(x) - b).max() < 1e-4
        # ... and refinement recovers double precision as usual
        from repro.multifrontal.refine import iterative_refinement

        ref = iterative_refinement(a, res.factor, b)
        assert ref.converged
        assert ref.final_residual < 1e-12

    def test_static_rejects_dynamic_only_kwargs(self, problem):
        a, sf = problem
        with pytest.raises(ValueError, match="dynamic"):
            parallel_factorize(a, sf, make_policy("P1"),
                               make_worker_pool(2, 0), memory_budget=10**9)

    def test_unknown_backend_rejected(self, problem):
        a, sf = problem
        with pytest.raises(ValueError, match="backend"):
            parallel_factorize(a, sf, make_policy("P1"),
                               make_worker_pool(2, 0), backend="bogus")


class TestRuntimeObservability:
    def test_metrics_export(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(4, 0))
        m = res.metrics()
        assert m.counter("tasks") == sf.n_supernodes
        assert m.counter("steals") == res.stats.steals
        rep = m.report()
        assert rep["gauges"]["peak_stack_bytes"] > 0
        assert "task" in rep["latency"]

    def test_chrome_trace_spans(self, problem):
        _, sf = problem
        res = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        trace = res.chrome_trace()
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == sf.n_supernodes
        assert len(res.spans) == sf.n_supernodes
