"""Ordering package: permutation validity, fill quality, structure."""

import numpy as np
import pytest

from repro.matrices import (
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)
from repro.matrices.csc import CSCMatrix, csc_from_dense
from repro.ordering import (
    ORDERING_METHODS,
    compute_ordering,
    invert_permutation,
    minimum_degree,
    natural_ordering,
    nested_dissection,
    reverse_cuthill_mckee,
)


def fill_in(a, perm):
    """nnz of the dense Cholesky factor after permuting."""
    d = a.permute_symmetric(perm).to_dense()
    l = np.linalg.cholesky(d)
    return int((np.abs(l) > 1e-12).sum())


@pytest.mark.parametrize("method", ORDERING_METHODS)
def test_orderings_are_permutations(method, lap2d_small):
    perm = compute_ordering(lap2d_small, method)
    assert perm.shape == (lap2d_small.n_rows,)
    assert np.array_equal(np.sort(perm), np.arange(lap2d_small.n_rows))


def test_unknown_method_raises(lap2d_small):
    with pytest.raises(ValueError):
        compute_ordering(lap2d_small, "metis")


def test_invert_permutation():
    perm = np.array([2, 0, 1])
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(3))
    assert np.array_equal(inv[perm], np.arange(3))


def test_natural_is_identity(lap2d_small):
    assert np.array_equal(
        natural_ordering(lap2d_small), np.arange(lap2d_small.n_rows)
    )


class TestMinimumDegree:
    def test_reduces_fill_vs_natural(self):
        a = grid_laplacian_2d(9, 9)
        f_nat = fill_in(a, natural_ordering(a))
        f_amd = fill_in(a, minimum_degree(a))
        assert f_amd < f_nat

    def test_star_graph_center_last(self):
        # minimum degree must eliminate leaves before the hub
        n = 8
        rows = [0] * (n - 1) + list(range(1, n)) + list(range(n))
        cols = list(range(1, n)) + [0] * (n - 1) + list(range(n))
        vals = [-1.0] * (2 * (n - 1)) + [float(n)] * n
        a = CSCMatrix.from_coo(rows, cols, vals, (n, n))
        perm = minimum_degree(a)
        # the hub may only be eliminated once its degree has collapsed
        # (ties with the final leaves are legitimate), and the resulting
        # ordering must be fill-free
        assert int(np.where(perm == 0)[0][0]) >= n - 2
        assert fill_in(a, perm) == 2 * n - 1

    def test_path_graph_zero_fill(self):
        # a tridiagonal matrix admits a no-fill ordering; MD should find one
        n = 12
        d = np.diag(np.full(n, 4.0)) + np.diag(np.full(n - 1, -1.0), 1) + np.diag(
            np.full(n - 1, -1.0), -1
        )
        a = csc_from_dense(d)
        assert fill_in(a, minimum_degree(a)) == 2 * n - 1

    def test_disconnected_graph(self):
        d = np.block(
            [
                [np.array([[2.0, -1.0], [-1.0, 2.0]]), np.zeros((2, 2))],
                [np.zeros((2, 2)), np.array([[3.0, -1.0], [-1.0, 3.0]])],
            ]
        )
        perm = minimum_degree(csc_from_dense(d))
        assert np.array_equal(np.sort(perm), np.arange(4))

    def test_dense_matrix(self, rng):
        d = rng.normal(size=(6, 6))
        d = d @ d.T + 6 * np.eye(6)
        perm = minimum_degree(csc_from_dense(d))
        assert np.array_equal(np.sort(perm), np.arange(6))

    def test_empty_matrix(self):
        a = CSCMatrix.from_coo([], [], [], (0, 0))
        assert minimum_degree(a).size == 0


class TestRCM:
    def test_reduces_bandwidth(self):
        a = random_spd(80, seed=2)
        perm = reverse_cuthill_mckee(a)
        p = a.permute_symmetric(perm)

        def bandwidth(mat):
            col = np.repeat(
                np.arange(mat.n_cols, dtype=np.int64), np.diff(mat.indptr)
            )
            return int(np.abs(mat.indices - col).max())

        # RCM ought to beat a random shuffle of the same matrix
        rng = np.random.default_rng(0)
        shuffled = a.permute_symmetric(rng.permutation(a.n_rows))
        assert bandwidth(p) <= bandwidth(shuffled)

    def test_path_graph_gives_bandwidth_one(self):
        n = 10
        d = np.diag(np.full(n, 4.0)) + np.diag(np.full(n - 1, -1.0), 1) + np.diag(
            np.full(n - 1, -1.0), -1
        )
        # shuffle, then RCM should recover a bandwidth-1 ordering
        a = csc_from_dense(d)
        shuffle = np.random.default_rng(3).permutation(n)
        perm = reverse_cuthill_mckee(a.permute_symmetric(shuffle))
        p = a.permute_symmetric(shuffle).permute_symmetric(perm).to_dense()
        assert np.allclose(p, np.tril(np.triu(p, -1), 1))

    def test_disconnected(self):
        d = np.eye(5)
        d[0, 1] = d[1, 0] = -0.5
        perm = reverse_cuthill_mckee(csc_from_dense(d))
        assert np.array_equal(np.sort(perm), np.arange(5))


class TestNestedDissection:
    def test_reduces_fill_on_grid(self):
        a = grid_laplacian_2d(12, 12)
        f_nat = fill_in(a, natural_ordering(a))
        f_nd = fill_in(a, nested_dissection(a))
        assert f_nd < f_nat

    def test_leaf_size_controls_recursion(self):
        a = grid_laplacian_3d(5, 5, 5)
        p1 = nested_dissection(a, leaf_size=8)
        p2 = nested_dissection(a, leaf_size=200)  # pure minimum degree
        for p in (p1, p2):
            assert np.array_equal(np.sort(p), np.arange(125))

    def test_separator_goes_last(self):
        # on a long thin grid the middle column is the natural separator;
        # ND must number *some* small separator last
        a = grid_laplacian_2d(15, 3)
        perm = nested_dissection(a, leaf_size=4)
        # the last eliminated vertices form a separator: removing them
        # disconnects the rest
        sep = set(perm[-3:].tolist())
        indptr, indices = a.adjacency()
        # BFS from perm[0] avoiding sep shouldn't reach everything
        n = a.n_rows
        seen = {int(perm[0])}
        stack = [int(perm[0])]
        while stack:
            v = stack.pop()
            for u in indices[indptr[v]:indptr[v + 1]]:
                u = int(u)
                if u not in seen and u not in sep:
                    seen.add(u)
                    stack.append(u)
        assert len(seen) < n - len(sep)

    def test_disconnected(self):
        d = np.eye(6)
        d[0, 1] = d[1, 0] = -0.4
        d[3, 4] = d[4, 3] = -0.4
        perm = nested_dissection(csc_from_dense(d), leaf_size=2)
        assert np.array_equal(np.sort(perm), np.arange(6))
