"""Property-based tests (hypothesis) on the core data structures and the
end-to-end solve invariant."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.autotune import FeatureMap, FeatureScaler, softmax
from repro.dense import potrf, syrk, trsm_right_lower
from repro.dense.blocked import HostKernels, blocked_cholesky_panels
from repro.gpu.clock import TaskGraph, schedule_graph
from repro.matrices import random_spd
from repro.matrices.csc import CSCMatrix
from repro.multifrontal import factorize_numeric, solve_factored
from repro.ordering import compute_ordering
from repro.policies import make_policy
from repro.symbolic import elimination_tree, symbolic_factorize
from repro.symbolic.etree import NO_PARENT


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def coo_triplets(draw, max_n=12, max_nnz=40):
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz, max_size=nnz,
        )
    )
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), np.array(vals)


@st.composite
def spd_matrix(draw, max_n=40):
    n = draw(st.integers(4, max_n))
    seed = draw(st.integers(0, 10_000))
    degree = draw(st.floats(2.0, 8.0))
    return random_spd(n, avg_degree=degree, seed=seed)


# ---------------------------------------------------------------------------
# CSC properties
# ---------------------------------------------------------------------------
class TestCSCProperties:
    @given(coo_triplets())
    def test_coo_round_trip_equals_dense_accumulation(self, triplets):
        n, rows, cols, vals = triplets
        a = CSCMatrix.from_coo(rows, cols, vals, (n, n))
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), vals)
        assert np.allclose(a.to_dense(), dense)

    @given(coo_triplets())
    def test_transpose_involution(self, triplets):
        n, rows, cols, vals = triplets
        a = CSCMatrix.from_coo(rows, cols, vals, (n, n))
        assert np.allclose(a.transpose().transpose().to_dense(), a.to_dense())

    @given(coo_triplets(), st.integers(0, 2**32 - 1))
    def test_matvec_linear(self, triplets, seed):
        n, rows, cols, vals = triplets
        a = CSCMatrix.from_coo(rows, cols, vals, (n, n))
        rng = np.random.default_rng(seed)
        x, y = rng.normal(size=n), rng.normal(size=n)
        assert np.allclose(
            a.matvec(2 * x + y), 2 * a.matvec(x) + a.matvec(y), atol=1e-8
        )

    @given(spd_matrix())
    def test_symmetric_permutation_preserves_spectrum(self, a):
        perm = np.random.default_rng(0).permutation(a.n_rows)
        w0 = np.linalg.eigvalsh(a.to_dense())
        w1 = np.linalg.eigvalsh(a.permute_symmetric(perm).to_dense())
        assert np.allclose(np.sort(w0), np.sort(w1), atol=1e-8)


# ---------------------------------------------------------------------------
# ordering / symbolic properties
# ---------------------------------------------------------------------------
class TestStructureProperties:
    @given(spd_matrix(), st.sampled_from(["amd", "rcm", "nd", "natural"]))
    def test_orderings_are_permutations(self, a, method):
        perm = compute_ordering(a, method)
        assert np.array_equal(np.sort(perm), np.arange(a.n_rows))

    @given(spd_matrix())
    def test_etree_parents_strictly_greater(self, a):
        tree = elimination_tree(a)
        j = np.arange(a.n_rows)
        has = tree.parent != NO_PARENT
        assert (tree.parent[has] > j[has]).all()

    @given(spd_matrix())
    def test_symbolic_invariants(self, a):
        sf = symbolic_factorize(a, ordering="amd")
        sf.validate()
        assert sf.nnz_factor >= a.lower_triangle().nnz  # no entry lost

    @given(spd_matrix())
    def test_factor_solve_round_trip(self, a):
        sf = symbolic_factorize(a, ordering="amd")
        nf = factorize_numeric(a, sf, make_policy("P1"))
        rng = np.random.default_rng(0)
        x_true = rng.normal(size=a.n_rows)
        b = a.matvec(x_true)
        x = solve_factored(nf, b)
        assert np.abs(x - x_true).max() <= 1e-6 * max(1.0, np.abs(x_true).max())


# ---------------------------------------------------------------------------
# dense kernels
# ---------------------------------------------------------------------------
class TestDenseProperties:
    @given(st.integers(2, 25), st.integers(0, 2**31 - 1))
    def test_potrf_trsm_syrk_consistency(self, n, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=(n, n + 3))
        a = b @ b.T + n * np.eye(n)
        k = max(1, n // 2)
        l1 = potrf(a[:k, :k])
        x = trsm_right_lower(a[k:, :k], l1)
        u = a[k:, k:].copy()
        syrk(u, x)
        # the Schur complement of an SPD matrix is SPD
        if u.size:
            assert np.linalg.eigvalsh((u + u.T) / 2).min() > -1e-8

    @given(st.integers(6, 30), st.integers(1, 10), st.integers(0, 2**31 - 1))
    def test_blocked_equals_monolithic(self, s, w, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=(s, s + 2))
        f = b @ b.T + s * np.eye(s)
        k = max(1, s // 2)
        ref = np.linalg.cholesky(f)
        work = f.copy()
        blocked_cholesky_panels(work, k, w, HostKernels())
        assert np.allclose(work[k:, :k], ref[k:, :k], atol=1e-8)


# ---------------------------------------------------------------------------
# scheduling properties
# ---------------------------------------------------------------------------
class TestSchedulingProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["cpu", "gpu", "dma"]),
                st.floats(0.0, 5.0, allow_nan=False),
                st.integers(0, 3),  # how many of the previous tasks to depend on
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_schedule_respects_all_constraints(self, spec):
        g = TaskGraph()
        for i, (engine, dur, ndeps) in enumerate(spec):
            deps = tuple(g.tasks[max(0, i - ndeps):i])
            g.add(f"t{i}", engine, dur, deps)
        res = schedule_graph(g)
        for t in g.tasks:
            for d in t.deps:
                assert t.start >= d.end - 1e-12
        # per-engine serialization
        by_engine: dict = {}
        for t in g.tasks:
            by_engine.setdefault(t.engine, []).append(t)
        for tasks in by_engine.values():
            tasks.sort(key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:]):
                assert b.start >= a.end - 1e-12
        assert res.makespan == pytest.approx(
            max(t.end for t in g.tasks), abs=1e-12
        )


# ---------------------------------------------------------------------------
# autotune properties
# ---------------------------------------------------------------------------
class TestAutotuneProperties:
    @given(
        st.lists(st.integers(0, 10**4), min_size=1, max_size=30),
        st.lists(st.integers(1, 10**4), min_size=1, max_size=30),
    )
    def test_features_finite(self, ms, ks):
        n = min(len(ms), len(ks))
        x = FeatureMap()(ms[:n], ks[:n])
        assert np.isfinite(x).all()

    @given(st.integers(1, 20), st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_softmax_is_distribution(self, n, r, seed):
        rng = np.random.default_rng(seed)
        p = softmax(rng.normal(size=(n, r)) * 100)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all() and (p <= 1).all()

    @given(st.integers(2, 50), st.integers(2, 6), st.integers(0, 2**31 - 1))
    def test_scaler_inverse_consistency(self, n, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d)) * rng.uniform(0.5, 100, size=d)
        sc = FeatureScaler().fit(x)
        z = sc.transform(x)
        assert np.allclose(z * sc.std + sc.mean, x, atol=1e-8)
