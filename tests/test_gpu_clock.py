"""Discrete-event engine: serialization, dependencies, overlap."""

import pytest

from repro.gpu.clock import EngineTimeline, TaskGraph, critical_path, schedule_graph


def test_single_engine_serializes():
    g = TaskGraph()
    a = g.add("a", "cpu", 1.0)
    b = g.add("b", "cpu", 2.0)
    res = schedule_graph(g)
    assert (a.start, a.end) == (0.0, 1.0)
    assert (b.start, b.end) == (1.0, 3.0)
    assert res.makespan == 3.0


def test_independent_engines_overlap():
    g = TaskGraph()
    g.add("a", "cpu", 1.0)
    g.add("b", "gpu", 1.0)
    res = schedule_graph(g)
    assert res.makespan == 1.0


def test_dependencies_respected_across_engines():
    g = TaskGraph()
    a = g.add("h2d", "dma", 2.0)
    b = g.add("kernel", "gpu", 1.0, deps=(a,))
    res = schedule_graph(g)
    assert b.start == 2.0
    assert res.makespan == 3.0


def test_copy_compute_overlap_pattern():
    # the P3 shape: upload overlaps potrf; trsm waits for both
    g = TaskGraph()
    potrf = g.add("potrf", "cpu", 5.0)
    h2d = g.add("h2d", "dma", 3.0)
    trsm = g.add("trsm", "gpu", 2.0, deps=(potrf, h2d))
    res = schedule_graph(g)
    assert trsm.start == 5.0  # bound by the slower of the two
    assert res.makespan == 7.0


def test_submission_before_dependency_rejected():
    g = TaskGraph()
    late = g.tasks  # build manually: dep not yet scheduled
    a = g.add("a", "cpu", 1.0)
    g2 = TaskGraph()
    b = g2.add("b", "cpu", 1.0, deps=(a,))
    with pytest.raises(ValueError):
        schedule_graph(g2)  # a never scheduled in this graph


def test_engine_state_persists_across_graphs():
    engines = {}
    g1 = TaskGraph()
    g1.add("a", "cpu", 4.0)
    schedule_graph(g1, engines=engines)
    g2 = TaskGraph()
    b = g2.add("b", "cpu", 1.0)
    res = schedule_graph(g2, engines=engines)
    assert b.start == 4.0
    assert res.makespan == 5.0


def test_release_time():
    g = TaskGraph()
    a = g.add("a", "cpu", 1.0)
    res = schedule_graph(g, start_time=10.0)
    assert a.start == 10.0
    assert res.elapsed == 1.0


def test_negative_duration_rejected():
    g = TaskGraph()
    with pytest.raises(ValueError):
        g.add("bad", "cpu", -1.0)


def test_busy_and_utilization():
    g = TaskGraph()
    g.add("a", "cpu", 2.0)
    g.add("b", "gpu", 1.0)
    res = schedule_graph(g)
    assert res.engines["cpu"].busy == 2.0
    assert res.engines["gpu"].utilization(res.makespan) == pytest.approx(0.5)


def test_category_totals():
    g = TaskGraph()
    g.add("a", "cpu", 2.0, category="potrf")
    g.add("b", "cpu", 3.0, category="copy")
    g.add("c", "cpu", 1.0, category="copy")
    res = schedule_graph(g)
    assert res.time_by_category() == {"potrf": 2.0, "copy": 4.0}


def test_critical_path_recovery():
    g = TaskGraph()
    a = g.add("a", "dma", 5.0)
    b = g.add("b", "cpu", 1.0)
    c = g.add("c", "gpu", 1.0, deps=(a,))
    res = schedule_graph(g)
    path = critical_path(res)
    assert [t.name for t in path] == ["a", "c"]


def test_zero_duration_tasks():
    g = TaskGraph()
    a = g.add("a", "cpu", 1.0)
    sync = g.add("sync", "cpu", 0.0, deps=(a,))
    res = schedule_graph(g)
    assert sync.start == sync.end == 1.0
