"""Parallel scheduling: worker pools, list scheduling, multi-GPU runs."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d, grid_laplacian_3d
from repro.multifrontal import solve_factored
from repro.parallel import list_schedule, make_worker_pool, parallel_factorize
from repro.policies import BaselineHybrid, make_policy
from repro.symbolic import symbolic_factorize


@pytest.fixture(scope="module")
def problem():
    a = grid_laplacian_3d(6, 6, 6)
    return a, symbolic_factorize(a, ordering="nd")


class TestWorkerPool:
    def test_cpu_only_pool(self):
        pool = make_worker_pool(4, 0)
        assert pool.n_workers == 4
        assert pool.n_gpus == 0
        assert pool.gpu_worker() is None

    def test_mixed_pool(self):
        pool = make_worker_pool(2, 2)
        assert pool.n_gpus == 2
        assert pool.gpu_worker().has_gpu
        # distinct GPUs per worker
        assert pool.workers[0].gpu is not pool.workers[1].gpu

    def test_gpu_needs_host_thread(self):
        with pytest.raises(ValueError):
            make_worker_pool(1, 2)


class TestListSchedule:
    def test_single_worker_equals_sum(self, problem):
        a, sf = problem
        pool = make_worker_pool(1, 0)
        res = list_schedule(sf, make_policy("P1"), pool, gang_threshold=np.inf)
        total = sum(t.elapsed for t in res.schedule)
        assert res.makespan == pytest.approx(total, rel=1e-9)

    def test_dependencies_respected(self, problem):
        a, sf = problem
        pool = make_worker_pool(3, 0)
        res = list_schedule(sf, make_policy("P1"), pool)
        end = {t.sid: t.end for t in res.schedule}
        start = {t.sid: t.start for t in res.schedule}
        kids = sf.schildren()
        for s in range(sf.n_supernodes):
            for c in kids[s]:
                assert end[c] <= start[s] + 1e-12

    def test_more_workers_never_slower(self, problem):
        a, sf = problem
        times = []
        for p in (1, 2, 4):
            pool = make_worker_pool(p, 0)
            times.append(
                list_schedule(sf, make_policy("P1"), pool, gang_threshold=np.inf).makespan
            )
        assert times[1] <= times[0] + 1e-12
        assert times[2] <= times[1] + 1e-12

    def test_4_thread_speedup_in_paper_band(self):
        # paper Table VII: 4-thread runs achieve ~2.7-4.3x; with gang
        # scheduling of the root fronts we should land in a similar band
        a = grid_laplacian_3d(8, 8, 8)
        sf = symbolic_factorize(a, ordering="nd")
        serial = list_schedule(sf, make_policy("P1"), make_worker_pool(1, 0)).makespan
        par = list_schedule(sf, make_policy("P1"), make_worker_pool(4, 0)).makespan
        speedup = serial / par
        assert 1.8 < speedup <= 4.0

    def test_gang_scheduling_helps_at_the_root(self, problem):
        a, sf = problem
        pool = make_worker_pool(4, 0)
        with_gang = list_schedule(sf, make_policy("P1"), pool, gang_threshold=1e6)
        without = list_schedule(sf, make_policy("P1"), pool, gang_threshold=np.inf)
        assert with_gang.makespan <= without.makespan

    def test_every_supernode_scheduled_once(self, problem):
        a, sf = problem
        res = list_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        assert sorted(t.sid for t in res.schedule) == list(range(sf.n_supernodes))

    def test_worker_busy_accounting(self, problem):
        a, sf = problem
        res = list_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        assert len(res.worker_busy) == 2
        assert 0 < res.utilization() <= 1.0

    def test_hybrid_policy_resolved_per_call(self, problem):
        a, sf = problem
        pool = make_worker_pool(1, 1)
        res = list_schedule(sf, BaselineHybrid(), pool)
        names = {t.policy for t in res.schedule}
        assert "P1" in names  # the many small calls

    def test_cpu_only_pool_forces_p1(self, problem):
        a, sf = problem
        pool = make_worker_pool(2, 0)
        res = list_schedule(sf, BaselineHybrid(), pool)
        assert {t.policy for t in res.schedule} == {"P1"}


class TestParallelFactorize:
    def test_numerics_correct_with_hybrid(self, problem):
        a, sf = problem
        pool = make_worker_pool(2, 2)
        res = parallel_factorize(a, sf, BaselineHybrid(), pool)
        b = np.ones(a.n_rows)
        x = solve_factored(res.factor, b)
        assert np.abs(a.matvec(x) - b).max() < 1e-4  # fp32-touched factor

    def test_numerics_exact_cpu_only(self, problem):
        a, sf = problem
        pool = make_worker_pool(4, 0)
        res = parallel_factorize(a, sf, make_policy("P1"), pool)
        b = np.ones(a.n_rows)
        x = solve_factored(res.factor, b)
        assert np.abs(a.matvec(x) - b).max() < 1e-10

    def test_2gpu_beats_1gpu(self):
        a = grid_laplacian_3d(8, 8, 8)
        sf = symbolic_factorize(a, ordering="nd")
        t1 = list_schedule(sf, BaselineHybrid(), make_worker_pool(1, 1)).makespan
        t2 = list_schedule(sf, BaselineHybrid(), make_worker_pool(2, 2)).makespan
        assert t2 < t1

    def test_speedup_vs_helper(self, problem):
        a, sf = problem
        res = list_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        assert res.speedup_vs(2 * res.makespan) == pytest.approx(2.0)

    def test_schedule_sorted_by_start(self, problem):
        a, sf = problem
        res = list_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        starts = [t.start for t in res.schedule]
        assert starts == sorted(starts)


class TestScheduleDeterminism:
    """Identical placements across repeated runs — the static scheduler
    is relied on as a reproducible baseline by the dynamic runtime's
    comparison benches, so tie-breaking must be deterministic."""

    @staticmethod
    def _placements(result):
        return [(t.sid, t.worker, t.start, t.end, t.policy, t.gang)
                for t in result.schedule]

    def test_identical_across_runs(self, problem):
        _, sf = problem
        runs = [
            list_schedule(sf, BaselineHybrid(), make_worker_pool(3, 1),
                          gang_threshold=np.inf)
            for _ in range(3)
        ]
        first = self._placements(runs[0])
        for r in runs[1:]:
            assert self._placements(r) == first
            assert r.makespan == runs[0].makespan
            assert r.worker_busy == runs[0].worker_busy

    def test_gang_branch_deterministic(self, problem):
        _, sf = problem
        # threshold low enough that the big root fronts gang-schedule
        runs = [
            list_schedule(sf, make_policy("P1"), make_worker_pool(4, 0),
                          gang_threshold=2e4)
            for _ in range(3)
        ]
        assert any(t.gang for t in runs[0].schedule)
        assert any(t.worker == -1 for t in runs[0].schedule)
        first = self._placements(runs[0])
        for r in runs[1:]:
            assert self._placements(r) == first
