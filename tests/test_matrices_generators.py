"""Generators must produce genuinely SPD matrices with the right patterns."""

import numpy as np
import pytest

from repro.matrices import (
    elasticity_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)


def is_spd(a):
    d = a.to_dense()
    if not np.allclose(d, d.T):
        return False
    return np.linalg.eigvalsh(d).min() > 0


class TestGridLaplacians:
    def test_2d_spd(self):
        assert is_spd(grid_laplacian_2d(6, 5))

    def test_3d_spd(self):
        assert is_spd(grid_laplacian_3d(4, 3, 5))

    def test_2d_stencil_count(self):
        # 5-point stencil: nnz = n + 2 * n_edges
        nx, ny = 7, 4
        a = grid_laplacian_2d(nx, ny)
        n_edges = (nx - 1) * ny + nx * (ny - 1)
        assert a.nnz == nx * ny + 2 * n_edges

    def test_3d_stencil_count(self):
        nx, ny, nz = 3, 4, 5
        a = grid_laplacian_3d(nx, ny, nz)
        n_edges = (
            (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1)
        )
        assert a.nnz == nx * ny * nz + 2 * n_edges

    def test_row_sums_equal_shift(self):
        # Laplacian rows sum to zero, so A @ 1 = shift * 1
        a = grid_laplacian_3d(4, 4, 4, shift=0.25)
        ones = np.ones(a.n_rows)
        assert np.allclose(a.matvec(ones), 0.25 * ones)

    def test_1x1_grid(self):
        a = grid_laplacian_2d(1, 1)
        assert a.n_rows == 1 and a.nnz == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_laplacian_2d(0, 3)
        with pytest.raises(ValueError):
            grid_laplacian_3d(2, -1, 2)


class TestElasticity:
    def test_spd(self):
        assert is_spd(elasticity_3d(3, 3, 3))

    def test_block_structure(self):
        # every scalar stencil entry expands to a dense dof x dof block
        dof = 3
        a = elasticity_3d(2, 2, 2, dof=dof)
        lap = grid_laplacian_3d(2, 2, 2, shift=0.0)
        assert a.n_rows == lap.n_rows * dof
        assert a.nnz == lap.nnz * dof * dof  # diagonal shift adds no pattern

    def test_dof_parameter(self):
        a = elasticity_3d(2, 2, 2, dof=2)
        assert a.n_rows == 16

    def test_coupling_bounds(self):
        with pytest.raises(ValueError):
            elasticity_3d(2, 2, 2, coupling=0.6)
        with pytest.raises(ValueError):
            elasticity_3d(2, 2, 2, dof=0)

    def test_zero_coupling_is_block_diagonal_laplacians(self):
        a = elasticity_3d(2, 2, 2, coupling=0.0, shift=0.1)
        d = a.to_dense()
        # with M1 = I the dof channels decouple: entries between different
        # dofs of different nodes vanish
        assert d[0, 4] == 0.0  # dof 0 of node 0 vs dof 1 of node 1


class TestRandomSpd:
    def test_spd(self):
        assert is_spd(random_spd(80, seed=1))

    def test_deterministic_by_seed(self):
        a = random_spd(50, seed=9)
        b = random_spd(50, seed=9)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_spd(50, seed=1)
        b = random_spd(50, seed=2)
        assert not (a.nnz == b.nnz and a.allclose(b))

    def test_density_scales(self):
        sparse = random_spd(200, avg_degree=2, seed=0)
        dense = random_spd(200, avg_degree=12, seed=0)
        assert dense.nnz > sparse.nnz

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            random_spd(0)
