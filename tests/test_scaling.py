"""Symmetric diagonal scaling and its mixed-precision payoff."""

import numpy as np
import pytest

from repro.matrices import anisotropic_laplacian_3d, random_spd
from repro.matrices.csc import csc_from_dense
from repro.matrices.scaling import apply_scaled_solve, symmetric_diagonal_scaling
from repro.multifrontal import SparseCholeskySolver


class TestScaling:
    def test_unit_diagonal(self):
        a = random_spd(50, seed=2)
        scaled, s = symmetric_diagonal_scaling(a)
        assert np.allclose(scaled.diagonal(), 1.0)
        assert np.allclose(s * s, a.diagonal())

    def test_congruence_preserves_spd(self):
        a = anisotropic_laplacian_3d(3, 3, 3, weights=(1.0, 1.0, 1e-4))
        scaled, _ = symmetric_diagonal_scaling(a)
        w = np.linalg.eigvalsh(scaled.to_dense())
        assert w.min() > 0

    def test_scaling_improves_conditioning(self):
        # wildly different row scales
        d = np.diag([1.0, 1e6, 1e-6, 1.0])
        d[0, 1] = d[1, 0] = 10.0
        d[2, 3] = d[3, 2] = 1e-7
        a = csc_from_dense(d + np.eye(4) * 0.0)
        scaled, _ = symmetric_diagonal_scaling(a)
        assert np.linalg.cond(scaled.to_dense()) < np.linalg.cond(d)

    def test_rejects_nonpositive_diagonal(self):
        a = csc_from_dense(np.diag([1.0, -2.0]))
        with pytest.raises(ValueError):
            symmetric_diagonal_scaling(a)

    def test_scaled_solve_round_trip(self, rng):
        a = random_spd(60, seed=5)
        scaled, s = symmetric_diagonal_scaling(a)
        solver = SparseCholeskySolver(scaled, policy="P1").factorize()
        x_true = rng.normal(size=60)
        b = a.matvec(x_true)
        x = apply_scaled_solve(lambda bb: solver.solve(bb), s, b)
        assert np.abs(x - x_true).max() < 1e-8

    def test_multirhs_scaled_solve(self, rng):
        from repro.multifrontal import solve_factored

        a = random_spd(40, seed=6)
        scaled, s = symmetric_diagonal_scaling(a)
        solver = SparseCholeskySolver(scaled, policy="P1").factorize()
        x_true = rng.normal(size=(40, 3))
        b = np.stack([a.matvec(x_true[:, j]) for j in range(3)], axis=1)
        x = apply_scaled_solve(
            lambda bb: solve_factored(solver.factor, bb), s, b
        )
        assert np.abs(x - x_true).max() < 1e-8


class TestMixedPrecisionPayoff:
    def test_equilibration_keeps_entries_in_fp32_range(self):
        """The concrete payoff: the device computes in float32, whose
        normal range ends near 1e-38.  A matrix with tiny row scales has
        entries that *underflow to zero* when cast to fp32 (silent
        structural corruption on the device); the equilibrated matrix
        casts losslessly."""
        rng = np.random.default_rng(0)
        base = random_spd(120, seed=9)
        scale = 10.0 ** rng.uniform(-25, 0, size=120)
        d = base.to_dense() * np.outer(scale, scale)
        a = csc_from_dense(d)

        raw32 = a.data.astype(np.float32)
        lost = int(((raw32 == 0) & (a.data != 0)).sum())
        assert lost > 0  # the hazard is real

        scaled, _ = symmetric_diagonal_scaling(a)
        eq32 = scaled.data.astype(np.float32)
        assert not ((eq32 == 0) & (scaled.data != 0)).any()

    def test_equilibrated_fp32_factor_still_fine(self):
        """And the equilibrated system factors in fp32 with the usual
        single-precision accuracy."""
        rng = np.random.default_rng(1)
        base = random_spd(100, seed=11)
        scale = 10.0 ** rng.uniform(-10, 2, size=100)
        d = base.to_dense() * np.outer(scale, scale)
        a = csc_from_dense(d)
        scaled, s = symmetric_diagonal_scaling(a)
        eq = SparseCholeskySolver(scaled, policy="P3").factorize()
        assert eq.factor.residual_norm(scaled) < 1e-4
