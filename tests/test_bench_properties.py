"""Property-based invariants behind the bench gate (hypothesis).

The committed ``BENCH_*.json`` baselines hard-fail on any
deterministic-counter change, so the harness leans on two empirical
facts about the engine, pinned here over *random* SPD matrices rather
than the handful of fixed scenarios:

* **cross-backend invariance** — flop totals, call counts and the
  factor itself (bitwise, via the BLAKE2b fingerprint) are identical
  whether the tree is walked serially, by the static partitioner or by
  the dynamic scheduler.  Simulated makespans are *not* bitwise
  invariant across backends (float reassociation under different
  scheduling orders), so they are only required to agree loosely.
* **cluster node-count invariance** — the fan-both cluster backend
  produces the same factor bytes at any fleet size (1, 2 or 4 nodes)
  as the serial walk; only the timing schedule changes.
* **run-to-run stability** — repeating the same configuration must
  reproduce every counter bit for bit, including the makespan and the
  allocator high-water marks.  This is the property the repeat-checker
  in :mod:`repro.bench.runner` enforces on every bench run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import SimulatedNode
from repro.matrices import random_spd
from repro.multifrontal import BatchParams, SparseCholeskySolver, factorize_numeric
from repro.symbolic import amalgamation_preset, symbolic_factorize
from repro.verify.lattice import factor_fingerprint

BACKENDS = ("serial", "static", "dynamic")


@st.composite
def spd_problem(draw, max_n=32):
    n = draw(st.integers(8, max_n))
    seed = draw(st.integers(0, 10_000))
    degree = draw(st.floats(2.0, 6.0))
    return random_spd(n, avg_degree=degree, seed=seed)


def _run_backend(a, sym, backend, policy="P1"):
    solver = SparseCholeskySolver.from_symbolic(
        a, sym, policy=policy, backend=backend
    )
    solver.factorize()
    return solver


class TestCrossBackendInvariance:
    @settings(max_examples=20, deadline=None)
    @given(spd_problem())
    def test_flops_calls_and_factor_bitwise_invariant(self, a):
        sym = symbolic_factorize(a, ordering="nd")
        flops, calls, prints = [], [], []
        for backend in BACKENDS:
            solver = _run_backend(a, sym, backend)
            flops.append(float(solver.stats.total_flops))
            calls.append(len(solver.factor.records))
            prints.append(factor_fingerprint(solver.factor))
        # bitwise: the flop model is pattern-only, the panels must not
        # depend on who walked the tree
        assert flops[0] == flops[1] == flops[2]
        assert calls[0] == calls[1] == calls[2]
        assert prints[0] == prints[1] == prints[2]

    @settings(max_examples=10, deadline=None)
    @given(spd_problem())
    def test_p1_makespans_agree_to_rounding_across_backends(self, a):
        # under host-only P1 every backend runs the same work on the same
        # engine; only summation order differs, so makespans agree to
        # float rounding.  (Offloading policies genuinely change the
        # schedule across backends, so no such property holds for them.)
        sym = symbolic_factorize(a, ordering="nd")
        spans = [
            float(_run_backend(a, sym, b, "P1").stats.simulated_seconds)
            for b in BACKENDS
        ]
        ref = max(spans)
        assert ref > 0
        assert all(abs(s - ref) <= 1e-6 * ref for s in spans)


class TestClusterNodeCountInvariance:
    @settings(max_examples=10, deadline=None)
    @given(spd_problem(), st.sampled_from((1, 2, 4)))
    def test_cluster_fingerprint_node_count_invariant(self, a, n_nodes):
        # sharding the tree across a fleet changes the timing schedule
        # but never the panel bytes: any node count fingerprints equal
        # to the serial walk
        from repro.cluster import ClusterSpec

        sym = symbolic_factorize(a, ordering="nd")
        serial = _run_backend(a, sym, "serial")
        clustered = SparseCholeskySolver.from_symbolic(
            a, sym, policy="P1", backend="cluster",
            cluster=ClusterSpec(n_ranks=n_nodes, gpus_per_rank=1),
        )
        clustered.factorize()
        assert factor_fingerprint(clustered.factor) == factor_fingerprint(
            serial.factor
        )


class TestRunToRunStability:
    @settings(max_examples=10, deadline=None)
    @given(spd_problem(), st.sampled_from(BACKENDS))
    def test_every_counter_bit_stable(self, a, backend):
        sym = symbolic_factorize(a, ordering="nd")

        def snapshot():
            solver = _run_backend(a, sym, backend)
            node = solver.factor.node
            counters = {
                "simulated_seconds": float(solver.stats.simulated_seconds),
                "total_flops": float(solver.stats.total_flops),
                "fu_calls": len(solver.factor.records),
                "fingerprint": factor_fingerprint(solver.factor),
            }
            for g in node.gpus:
                counters[f"gpu{g.gpu_id}.high_water"] = int(
                    g.device_pool.stats.high_water
                )
            return counters

        assert snapshot() == snapshot()

    @settings(max_examples=10, deadline=None)
    @given(spd_problem())
    def test_serial_driver_matches_serial_backend_bitwise(self, a):
        # factorize_numeric on a fresh node IS the serial backend; the
        # factorize scenarios rely on this equivalence
        sym = symbolic_factorize(a, ordering="nd")
        solver = _run_backend(a, sym, "serial")
        from repro.policies import make_policy

        nf = factorize_numeric(
            a, sym, make_policy("P1"),
            node=SimulatedNode(n_cpus=1, n_gpus=1),
        )
        assert factor_fingerprint(nf) == factor_fingerprint(solver.factor)
        assert float(nf.makespan) == float(solver.stats.simulated_seconds)


class TestAmalgamationProperties:
    """Relaxed amalgamation is a *normwise* transformation: any preset
    must still factor the matrix to double-precision residual, and the
    coarser partitions must refine into the fundamental one."""

    @settings(max_examples=8, deadline=None)
    @given(spd_problem(), st.sampled_from(("off", "default", "aggressive")))
    def test_normwise_correct_under_every_preset(self, a, preset):
        from repro.verify import check_factor_residual
        from repro.verify.lattice import VerifyConfig

        config = VerifyConfig(policy="P1", amalgamation=preset)
        assert check_factor_residual(a, config) == []

    @settings(max_examples=8, deadline=None)
    @given(spd_problem())
    def test_presets_only_merge_fundamental_supernodes(self, a):
        sym = {
            preset: symbolic_factorize(
                a, ordering="nd", amalgamation=amalgamation_preset(preset)
            )
            for preset in ("off", "default", "aggressive")
        }
        fundamental = {int(p) for p in sym["off"].super_ptr}
        for preset in ("default", "aggressive"):
            assert sym[preset].n_supernodes <= sym["off"].n_supernodes
            assert {int(p) for p in sym[preset].super_ptr} <= fundamental

    @settings(max_examples=8, deadline=None)
    @given(spd_problem())
    def test_amalgamated_factor_is_backend_invariant(self, a):
        # the coarser tree changes the floats vs the default tree, but
        # across backends *on that tree* the factor stays bitwise equal
        sym = symbolic_factorize(
            a, ordering="nd", amalgamation=amalgamation_preset("aggressive")
        )
        prints = {
            factor_fingerprint(_run_backend(a, sym, b).factor)
            for b in BACKENDS
        }
        assert len(prints) == 1


class TestBatchedExecutionProperties:
    """Stacked small-front execution is a *bitwise* transformation: at
    any cutoff the factors and the deterministic counters match the
    unbatched run exactly."""

    @settings(max_examples=12, deadline=None)
    @given(spd_problem(), st.integers(0, 64), st.sampled_from(BACKENDS))
    def test_bit_identical_factor_at_any_cutoff(self, a, cutoff, backend):
        sym = symbolic_factorize(a, ordering="nd")
        base = _run_backend(a, sym, backend)
        batched = SparseCholeskySolver.from_symbolic(
            a, sym, policy="P1", backend=backend,
            batching=BatchParams(front_cutoff=cutoff),
        )
        batched.factorize()
        assert factor_fingerprint(batched.factor) == factor_fingerprint(
            base.factor
        )
        # flop counters are pattern-only: bit-stable under batching
        assert float(batched.stats.total_flops) == float(
            base.stats.total_flops
        )
        assert len(batched.factor.records) == len(base.factor.records)

    @settings(max_examples=10, deadline=None)
    @given(spd_problem(), st.integers(1, 64))
    def test_dispatch_accounting_conserved(self, a, cutoff):
        sym = symbolic_factorize(a, ordering="nd")
        solver = SparseCholeskySolver.from_symbolic(
            a, sym, policy="P1", backend="serial",
            batching=BatchParams(front_cutoff=cutoff),
        )
        solver.factorize()
        nf = solver.factor
        n_super = sym.n_supernodes
        assert nf.task_dispatches == n_super - nf.batched_fronts + nf.batch_tasks
        if nf.batch_tasks:
            # every batch stacks at least min_batch fronts
            assert nf.batched_fronts >= 2 * nf.batch_tasks
            assert nf.task_dispatches < n_super
        else:
            assert nf.batched_fronts == 0
            assert nf.task_dispatches == n_super
        # run-to-run: the counters are bit-stable
        again = SparseCholeskySolver.from_symbolic(
            a, sym, policy="P1", backend="serial",
            batching=BatchParams(front_cutoff=cutoff),
        )
        again.factorize()
        assert (again.factor.batch_tasks, again.factor.batched_fronts) == (
            nf.batch_tasks, nf.batched_fronts
        )


# ----------------------------------------------------------------------
# tiered factor cache: byte conservation, bit identity, tier budgets
# ----------------------------------------------------------------------
class _Blob:
    """Synthetic payload with an explicit recompute cost."""

    def __init__(self, data: bytes, makespan: float):
        self.data = data
        self.makespan = makespan


@st.composite
def tier_workload(draw):
    """A random tier stack plus a random put/get trace over few keys."""
    from repro.service import StorageTier, TieredFactorCache, TierSpec

    ram = draw(st.integers(100, 900))
    n_lower = draw(st.integers(0, 2))
    lower = [
        StorageTier(
            TierSpec(
                f"t{i}",
                draw(st.integers(200, 2000)),
                bandwidth=draw(st.floats(1e5, 1e9)),
                latency=draw(st.floats(0.0, 0.1)),
            ),
        )
        for i in range(n_lower)
    ]
    cache = TieredFactorCache(
        max_bytes=ram,
        lower_tiers=lower,
        placement=draw(
            st.sampled_from(("spill", "drop", "spill-threshold"))
        ),
        transfer=draw(
            st.sampled_from(
                ("pull-on-read", "read-through", "cheapest-transfer")
            )
        ),
    )
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("put", "get")),
                st.integers(0, 7),                  # key id
                st.integers(1, 1100),               # nbytes when putting
                st.floats(0.0, 1.0),                # makespan when putting
            ),
            min_size=1,
            max_size=40,
        )
    )
    return cache, ops


class TestTierAccounting:
    @settings(max_examples=40, deadline=None)
    @given(tier_workload())
    def test_bytes_conserved_and_budgets_respected(self, workload):
        # (a) inserted + imported == resident + dropped + exported and
        # (c) no tier over budget — checked after *every* operation, so
        # any transient violation of either property fails too
        cache, ops = workload
        for action, key_id, nbytes, makespan in ops:
            if action == "put":
                cache.put_numeric(
                    f"k{key_id}",
                    _Blob(b"x" * min(nbytes, 64), makespan),
                    nbytes=nbytes,
                )
            else:
                cache.get_numeric(f"k{key_id}")
            assert cache.check_conservation() == []
        cache.clear()
        assert cache.check_conservation() == []
        assert cache.total_resident_bytes() == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.binary(min_size=1, max_size=256),
        st.integers(2, 5),
        st.sampled_from(("pull-on-read", "cheapest-transfer")),
    )
    def test_payload_bit_identical_after_spill_and_promotion(
        self, blob, n_fillers, transfer
    ):
        # (b) a factor readable before a spill comes back bit-identical
        # after the round trip through a lower tier
        from repro.service import StorageTier, TieredFactorCache, TierSpec

        arr = np.frombuffer(blob, dtype=np.uint8).copy()
        cache = TieredFactorCache(
            max_bytes=400,
            lower_tiers=[StorageTier(TierSpec("disk", 10_000, 1e6, 0.0))],
            transfer=transfer,
        )
        assert cache.put_numeric("target", arr, nbytes=200)
        before = cache.peek_numeric("target").tobytes()
        for i in range(n_fillers):  # force the target out of RAM
            cache.put_numeric(f"filler{i}", _Blob(b"f", 0.0), nbytes=200)
        assert ("numeric", "target") in cache.tier("disk").keys()
        got = cache.get_numeric("target")
        assert got is not None
        assert got.tobytes() == before == blob
        assert cache.check_conservation() == []
