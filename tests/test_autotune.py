"""Auto-tuning: features, objectives, optimizer, training quality."""

import numpy as np
import pytest

from repro.autotune import (
    FeatureMap,
    FeatureScaler,
    PolicyClassifier,
    TimingDataset,
    collect_timing_dataset,
    cross_entropy_loss,
    expected_time_loss,
    minimize_gd,
    sample_mk_cloud,
    softmax,
    train_cost_sensitive,
    train_cross_entropy,
    train_default_classifier,
)


class TestFeatures:
    def test_paper_feature_values(self):
        fm = FeatureMap()
        x = fm([6], [3])[0]
        # [m, k, m/k, m^2, mk, k^2, k^3, mk^2, bias]
        assert np.allclose(x, [6, 3, 2.0, 36, 18, 9, 27, 54, 1.0])

    def test_k_zero_guard(self):
        fm = FeatureMap()
        x = fm([5], [0])[0]
        assert np.isfinite(x).all()

    def test_vectorized(self):
        fm = FeatureMap()
        x = fm([1, 2, 3], [4, 5, 6])
        assert x.shape == (3, fm.dim)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            FeatureMap()([1, 2], [3])

    def test_unknown_feature(self):
        with pytest.raises(ValueError):
            FeatureMap(names=("m", "banana"))([1], [1])

    def test_ops_feature(self):
        fm = FeatureMap(names=("ops",))
        x = fm([6], [3])[0]
        assert x[0] == pytest.approx(27 / 3 + 6 * 9 + 36 * 3)

    def test_scaler_standardizes(self, rng):
        x = rng.normal(size=(100, 4)) * np.array([1, 10, 100, 1]) + 5
        x[:, 3] = 1.0  # constant bias column
        sc = FeatureScaler().fit(x)
        z = sc.transform(x)
        assert np.allclose(z[:, :3].mean(axis=0), 0, atol=1e-10)
        assert np.allclose(z[:, :3].std(axis=0), 1, atol=1e-10)
        assert np.allclose(z[:, 3], 1.0)  # untouched

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.ones((2, 2)))


class TestObjectives:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 3)) * 50)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_softmax_overflow_safe(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()

    def test_expected_time_at_uniform(self):
        # theta = 0: uniform probabilities -> mean of each row
        x = np.ones((2, 1))
        t = np.array([[1.0, 3.0], [2.0, 4.0]])
        loss, _ = expected_time_loss(np.zeros((1, 2)), x, t)
        assert loss == pytest.approx(2.0 + 3.0)

    @pytest.mark.parametrize("loss_fn", [expected_time_loss, cross_entropy_loss])
    def test_gradients_match_finite_differences(self, loss_fn, rng):
        n, d, r = 12, 4, 3
        x = rng.normal(size=(n, d))
        if loss_fn is expected_time_loss:
            target = rng.uniform(0.1, 2.0, size=(n, r))
        else:
            target = rng.integers(0, r, size=n)
        theta = rng.normal(size=(d, r)) * 0.3
        loss, grad = loss_fn(theta, x, target, ridge=0.01)
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (3, 1)]:
            tp = theta.copy()
            tp[idx] += eps
            lp, _ = loss_fn(tp, x, target, ridge=0.01)
            tm = theta.copy()
            tm[idx] -= eps
            lm, _ = loss_fn(tm, x, target, ridge=0.01)
            fd = (lp - lm) / (2 * eps)
            assert grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_expected_time_lower_bounded_by_oracle(self, rng):
        n, d, r = 30, 3, 4
        x = rng.normal(size=(n, d))
        t = rng.uniform(0.1, 2.0, size=(n, r))
        theta = rng.normal(size=(d, r))
        loss, _ = expected_time_loss(theta, x, t)
        assert loss >= t.min(axis=1).sum() - 1e-9


class TestOptimizer:
    def test_quadratic_bowl(self):
        target = np.array([[1.0, -2.0], [3.0, 0.5]])

        def fun(th):
            diff = th - target
            return 0.5 * float((diff * diff).sum()), diff

        res = minimize_gd(fun, np.zeros((2, 2)), max_iter=200)
        assert res.converged
        assert np.allclose(res.theta, target, atol=1e-4)

    def test_history_monotone_nonincreasing(self, rng):
        a = rng.normal(size=(5, 5))
        q = a @ a.T + np.eye(5)

        def fun(th):
            v = th[:, 0]
            return 0.5 * float(v @ q @ v), (q @ th[:, 0])[:, None]

        res = minimize_gd(fun, rng.normal(size=(5, 1)), max_iter=100)
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))


class TestDataset:
    @pytest.fixture(scope="class")
    def small_ds(self, model):
        m = np.array([10, 200, 2000, 0])
        k = np.array([5, 60, 500, 3000])
        return collect_timing_dataset(m, k, tesla := model)

    def test_shapes(self, small_ds):
        assert small_ds.times.shape == (4, 4)
        assert small_ds.n == 4

    def test_oracle_leq_any_policy(self, small_ds):
        oracle = small_ds.oracle_time()
        for p in small_ds.policies:
            assert oracle <= small_ds.policy_time(p) + 1e-12

    def test_best_labels_argmin(self, small_ds):
        lab = small_ds.best_labels()
        assert np.array_equal(lab, np.argmin(small_ds.times, axis=1))

    def test_repetitions_and_noise(self, model):
        ds = collect_timing_dataset(
            np.array([100]), np.array([50]), model, noise=0.05, repetitions=3
        )
        assert ds.n == 3
        assert len({float(t) for t in ds.times[:, 0]}) > 1  # noisy replicas

    def test_subsample(self, small_ds):
        sub = small_ds.subsample(2, seed=1)
        assert sub.n == 2

    def test_mk_cloud_properties(self):
        m, k = sample_mk_cloud(300, seed=4)
        assert m.size == k.size == 300
        assert (k >= 1).all()
        assert (m >= 0).all()
        assert (m == 0).any()  # the root special case is represented

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            TimingDataset(
                np.array([1]), np.array([1, 2]),
                np.ones((1, 2)), ("P1", "P2"),
            )


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self, model):
        m, k = sample_mk_cloud(250, seed=2)
        ds = collect_timing_dataset(m, k, model, noise=0.05, repetitions=2, seed=2)
        me, ke = sample_mk_cloud(250, seed=77)
        ev = collect_timing_dataset(me, ke, model)
        return ds, ev

    def test_cost_sensitive_close_to_oracle(self, trained):
        ds, ev = trained
        clf = train_cost_sensitive(ds)
        total = clf.expected_time(ev.m, ev.k, ev.times)
        oracle = ev.oracle_time()
        # the paper: model hybrid within ~2% of the ideal hybrid
        assert total <= 1.05 * oracle

    def test_cost_sensitive_beats_or_ties_cross_entropy(self, trained):
        ds, ev = trained
        cs = train_cost_sensitive(ds)
        ce = train_cross_entropy(ds)
        t_cs = cs.expected_time(ev.m, ev.k, ev.times)
        t_ce = ce.expected_time(ev.m, ev.k, ev.times)
        assert t_cs <= t_ce * 1.01

    def test_beats_every_static_policy(self, trained):
        ds, ev = trained
        clf = train_cost_sensitive(ds)
        total = clf.expected_time(ev.m, ev.k, ev.times)
        for p in ev.policies:
            assert total < ev.policy_time(p)

    def test_small_calls_predicted_p1(self, trained):
        ds, _ = trained
        clf = train_cost_sensitive(ds)
        assert clf.predict_one(5, 3) == "P1"

    def test_huge_calls_predicted_gpu(self, trained):
        ds, _ = trained
        clf = train_cost_sensitive(ds)
        assert clf.predict_one(9000, 5000) in ("P3", "P4")

    def test_default_classifier_cached(self, model):
        a = train_default_classifier(model, n_samples=60, seed=5)
        b = train_default_classifier(model, n_samples=60, seed=5)
        assert a is b

    def test_classifier_roundtrip_api(self, trained):
        ds, _ = trained
        clf = train_cost_sensitive(ds)
        proba = clf.predict_proba([100], [50])
        assert proba.shape == (1, 4)
        assert proba.sum() == pytest.approx(1.0)
        counts = clf.decision_counts(ds.m, ds.k)
        assert sum(counts.values()) == ds.n

    def test_classifier_validates_theta(self):
        with pytest.raises(ValueError):
            PolicyClassifier(np.zeros((3, 2)), ("P1",))


class TestEvaluation:
    @pytest.fixture(scope="class")
    def setup(self, model):
        from repro.autotune import evaluate, collect_timing_dataset

        m, k = sample_mk_cloud(200, seed=13)
        ds = collect_timing_dataset(m, k, model, seed=13)
        clf = train_cost_sensitive(ds, max_iter=300)
        return ds, clf

    def test_regret_report_consistency(self, setup):
        from repro.autotune import evaluate

        ds, clf = setup
        rep = evaluate(clf, ds)
        assert rep.total_seconds >= rep.oracle_seconds - 1e-12
        assert rep.regret_seconds == pytest.approx(
            rep.total_seconds - rep.oracle_seconds
        )
        assert 0.0 <= rep.accuracy <= 1.0
        assert rep.n == ds.n

    def test_confusion_matrices(self, setup):
        from repro.autotune import confusion_matrix

        ds, clf = setup
        counts, cost = confusion_matrix(clf, ds)
        r = len(ds.policies)
        assert counts.shape == cost.shape == (r, r)
        assert counts.sum() == ds.n
        # diagonal confusions cost nothing
        assert np.allclose(np.diag(cost), 0.0)
        # total off-diagonal cost equals the regret
        from repro.autotune import evaluate

        rep = evaluate(clf, ds)
        assert cost.sum() == pytest.approx(rep.regret_seconds, abs=1e-9)

    def test_cross_validation(self, setup, model):
        from repro.autotune import cross_validate

        ds, _ = setup
        reports = cross_validate(
            ds, lambda d: train_cost_sensitive(d, max_iter=200), k_folds=3
        )
        assert len(reports) == 3
        assert sum(r.n for r in reports) == ds.n
        # every fold stays within a sane band of the oracle
        assert all(r.regret_percent < 50.0 for r in reports)

    def test_cross_validation_validates_args(self, setup):
        from repro.autotune import cross_validate

        ds, _ = setup
        with pytest.raises(ValueError):
            cross_validate(ds, lambda d: None, k_folds=1)
