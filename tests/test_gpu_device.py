"""Allocator pools, the CUBLAS context, and the simulated node."""

import numpy as np
import pytest

from repro.dense.blocked import HostKernels, blocked_cholesky_panels
from repro.gpu import CublasContext, HighWaterMarkPool, SimulatedNode, tesla_t10_model
from repro.gpu.allocator import DeviceMemoryError, PerCallPool
from repro.gpu.cublas import panel_kernel_sequence


class TestPools:
    def test_growth_then_free_reuse(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 1e-3)
        assert pool.request(100) == 1e-3
        assert pool.request(50) == 0.0       # fits under high-water mark
        assert pool.request(100) == 0.0
        assert pool.request(200) == 1e-3     # growth
        assert pool.stats.n_growths == 2
        assert pool.stats.n_requests == 4

    def test_capacity_limit(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 0.0, capacity_limit=1000)
        pool.request(1000)
        with pytest.raises(DeviceMemoryError):
            pool.request(1001)

    def test_negative_rejected(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 0.0)
        with pytest.raises(ValueError):
            pool.request(-1)

    def test_release_drops_in_use_keeps_capacity(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 1e-3)
        pool.request(100)
        pool.request(40)
        assert pool.in_use == 140
        pool.release(40)
        assert pool.in_use == 100
        pool.release()                       # release everything
        assert pool.in_use == 0
        assert pool.capacity == 100          # buffer retained: no growth cost
        assert pool.request(100) == 0.0
        with pytest.raises(ValueError):
            pool.release(-1)

    def test_reset_peak_forgets_high_water(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 1e-3)
        pool.request(500)
        pool.release()
        pool.reset_peak()
        assert pool.capacity == 0
        assert pool.stats.high_water == 0
        assert pool.request(100) == 1e-3     # must really allocate again

    def test_capacity_limit_failure_leaves_accounting_clean(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: 0.0, capacity_limit=1000)
        pool.request(600)
        with pytest.raises(DeviceMemoryError):
            pool.request(1001)
        assert pool.in_use == 600            # failed request not charged
        assert pool.capacity == 600
        assert pool.request(1000) == 0.0     # at the limit still fits

    def test_per_call_pool_release_and_limit(self):
        pool = PerCallPool(alloc_time=lambda b: 1e-4, capacity_limit=100)
        pool.request(60)
        pool.release(60)
        assert pool.in_use == 0
        with pytest.raises(DeviceMemoryError):
            pool.request(101)
        pool.reset_peak()
        assert pool.stats.high_water == 0

    def test_per_call_pool_always_pays(self):
        pool = PerCallPool(alloc_time=lambda b: 2e-3)
        assert pool.request(10) == 2e-3
        assert pool.request(10) == 2e-3
        assert pool.stats.n_growths == 2

    def test_alloc_seconds_accumulate(self):
        pool = HighWaterMarkPool(alloc_time=lambda b: b * 1e-9)
        pool.request(1000)
        pool.request(3000)
        assert pool.stats.alloc_seconds == pytest.approx(4e-6)
        assert pool.stats.high_water == 3000


class TestCublasContext:
    @pytest.fixture
    def ctx(self):
        return CublasContext(tesla_t10_model())

    def test_fp32_dtype_under_sp(self, ctx):
        assert ctx.dtype == np.float32

    def test_dp_mode_uses_float64(self):
        ctx = CublasContext(tesla_t10_model().with_precision("dp"))
        assert ctx.dtype == np.float64

    def test_rejects_host_dtype(self, ctx, rng):
        with pytest.raises(TypeError):
            ctx.potrf(np.eye(4))  # float64 into an sp context

    def test_kernels_compute_correctly_in_fp32(self, ctx, rng):
        a = rng.normal(size=(10, 12)).astype(np.float32)
        spd = (a @ a.T + 20 * np.eye(10)).astype(np.float32)
        l = ctx.potrf(spd)
        assert np.allclose(l @ l.T, spd, atol=1e-3)
        b = rng.normal(size=(6, 10)).astype(np.float32)
        x = ctx.trsm(b, l)
        assert np.allclose(x @ l.T, b, atol=1e-3)
        c = np.eye(6, dtype=np.float32)
        ctx.syrk(c, x)
        assert np.allclose(c, np.eye(6) - x @ x.T, atol=1e-3)

    def test_time_charged_per_call(self, ctx, rng):
        a = rng.normal(size=(8, 8)).astype(np.float32)
        spd = (a @ a.T + 20 * np.eye(8)).astype(np.float32)
        before = ctx.busy_seconds
        ctx.potrf(spd)
        assert ctx.busy_seconds > before
        assert ctx.last_call_seconds > 0
        assert ctx.calls[-1].kernel == "potrf"

    def test_syrk_outer_returns_product(self, ctx, rng):
        x = rng.normal(size=(5, 3)).astype(np.float32)
        w = ctx.syrk_outer(x)
        assert np.allclose(w, x @ x.T, atol=1e-4)

    def test_price_matches_sum_of_kernel_times(self, ctx):
        calls = panel_kernel_sequence(100, 40, 16)
        total = ctx.price(calls)
        manual = sum(
            ctx.model.kernel_time("gpu", c.kernel, m=c.m, n=c.n, k=c.k)
            for c in calls
        )
        assert total == pytest.approx(manual)

    def test_blocked_loop_records_declared_sequence(self, ctx, rng):
        s, k, w = 50, 30, 8
        b = rng.normal(size=(s, s + 3))
        f = (b @ b.T + s * np.eye(s)).astype(np.float32)
        blocked_cholesky_panels(f, k, w, ctx)
        got = [(c.kernel, c.m, c.n, c.k) for c in ctx.calls]
        want = [(c.kernel, c.m, c.n, c.k) for c in panel_kernel_sequence(s, k, w)]
        assert got == want


class TestPanelSequence:
    def test_single_panel_no_trailing(self):
        calls = panel_kernel_sequence(10, 10, 10)
        assert [c.kernel for c in calls] == ["potrf"]

    def test_single_panel_with_update(self):
        calls = panel_kernel_sequence(15, 5, 5)
        assert [c.kernel for c in calls] == ["potrf", "trsm", "syrk"]

    def test_multi_panel_structure(self):
        calls = panel_kernel_sequence(20, 10, 5)
        kinds = [c.kernel for c in calls]
        assert kinds == [
            "potrf", "trsm", "syrk", "gemm", "syrk",   # first panel
            "potrf", "trsm", "syrk",                    # last panel
        ]

    def test_flops_conserved(self):
        from repro.dense.kernels import (
            gemm_flops, potrf_flops, syrk_flops, trsm_flops,
        )
        s, k = 80, 50
        total = 0.0
        for c in panel_kernel_sequence(s, k, 16):
            total += {
                "potrf": lambda c: potrf_flops(c.k),
                "trsm": lambda c: trsm_flops(c.m, c.k),
                "syrk": lambda c: syrk_flops(c.m, c.k),
                "gemm": lambda c: gemm_flops(c.m, c.n, c.k) / 2,
            }[c.kernel](c)
        m = s - k
        expected = potrf_flops(k) + trsm_flops(m, k) + syrk_flops(m, k)
        assert total == pytest.approx(expected, rel=0.5)


class TestSimulatedNode:
    def test_default_configuration(self):
        node = SimulatedNode()
        assert len(node.cpus) == 1
        assert len(node.gpus) == 1
        assert node.now == 0.0

    def test_engine_names_unique_per_gpu(self):
        node = SimulatedNode(n_cpus=2, n_gpus=2)
        names = {
            g.compute_engine for g in node.gpus
        } | {g.h2d_engine for g in node.gpus} | {g.d2h_engine for g in node.gpus}
        assert len(names) == 6

    def test_reserve_charges_once(self):
        node = SimulatedNode()
        g = node.gpus[0]
        first = g.reserve(1000, 1000)
        assert first > 0
        assert g.reserve(500, 500) == 0.0

    def test_reset_clears_state(self):
        node = SimulatedNode()
        node.gpus[0].reserve(1000, 1000)
        from repro.gpu.clock import TaskGraph, schedule_graph
        g = TaskGraph()
        g.add("x", "cpu0", 1.0)
        schedule_graph(g, engines=node.engines)
        assert node.now == 1.0
        node.reset()
        assert node.now == 0.0
        assert node.gpus[0].device_pool.capacity == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedNode(n_cpus=0)
        with pytest.raises(ValueError):
            SimulatedNode(n_gpus=-1)
