"""Extended solver capabilities: multi-RHS, value updates, logdet,
device-memory fallback, classifier persistence."""

import numpy as np
import pytest

from repro import SparseCholeskySolver, grid_laplacian_2d, random_spd
from repro.autotune import (
    PolicyClassifier,
    collect_timing_dataset,
    sample_mk_cloud,
    train_cost_sensitive,
)
from repro.gpu import SimulatedNode, tesla_t10_model
from repro.gpu.spec import GpuSpec, TESLA_T10
from repro.multifrontal import factorize_numeric, solve_factored
from repro.multifrontal.numeric import replay_factorize
from repro.policies import make_policy
from repro.symbolic import symbolic_factorize
from dataclasses import replace


class TestMultiRHS:
    def test_block_solve_matches_columnwise(self, lap2d_small, rng):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        b = rng.normal(size=(lap2d_small.n_rows, 4))
        x_block = solve_factored(nf, b)
        for j in range(4):
            xj = solve_factored(nf, b[:, j])
            assert np.allclose(x_block[:, j], xj)

    def test_block_solve_accuracy(self, lap2d_small, rng):
        s = SparseCholeskySolver(lap2d_small, policy="P1").factorize()
        x_true = rng.normal(size=(lap2d_small.n_rows, 3))
        b = np.stack(
            [lap2d_small.matvec(x_true[:, j]) for j in range(3)], axis=1
        )
        x = solve_factored(s.factor, b)
        assert np.abs(x - x_true).max() < 1e-9

    def test_bad_shapes_rejected(self, lap2d_small):
        s = SparseCholeskySolver(lap2d_small, policy="P1").factorize()
        with pytest.raises(ValueError):
            solve_factored(s.factor, np.ones((3, 2)))
        with pytest.raises(ValueError):
            solve_factored(s.factor, np.ones((lap2d_small.n_rows, 2, 2)))


class TestUpdateValues:
    def test_refactor_same_pattern(self, rng):
        a = random_spd(60, seed=1)
        s = SparseCholeskySolver(a, ordering="amd", policy="P1").factorize()
        n_super_before = s.stats.n_supernodes
        # scale values (same pattern), refactor, solve
        a2 = a.copy()
        a2.data *= 2.0
        s.update_values(a2)
        assert s.stats.n_supernodes == n_super_before
        x = s.solve(np.ones(60))
        assert np.abs(a2.matvec(x) - 1).max() < 1e-9

    def test_rejects_different_pattern(self):
        a = random_spd(60, seed=1)
        b = random_spd(60, seed=2)
        s = SparseCholeskySolver(a, policy="P1").factorize()
        with pytest.raises(ValueError):
            s.update_values(b)

    def test_update_before_analyze_is_lazy(self):
        a = random_spd(30, seed=4)
        s = SparseCholeskySolver(a, policy="P1")
        a2 = a.copy()
        a2.data *= 1.5
        s.update_values(a2)       # no symbolic yet: just swap
        assert s.factor is None
        x = s.solve(np.ones(30))
        assert np.abs(a2.matvec(x) - 1).max() < 1e-9


class TestLogDet:
    def test_matches_dense(self, rng):
        a = random_spd(40, seed=9)
        s = SparseCholeskySolver(a, policy="P1").factorize()
        sign, ref = np.linalg.slogdet(a.to_dense())
        assert sign == 1.0
        assert s.log_determinant() == pytest.approx(ref, rel=1e-10)

    def test_scaling_property(self):
        a = random_spd(25, seed=3)
        s1 = SparseCholeskySolver(a, policy="P1").factorize()
        a2 = a.copy()
        a2.data *= 4.0
        s2 = SparseCholeskySolver(a2, policy="P1").factorize()
        # det(cA) = c^n det(A)
        assert s2.log_determinant() - s1.log_determinant() == pytest.approx(
            25 * np.log(4.0), rel=1e-10
        )


def tiny_memory_node():
    """A node whose GPU has almost no memory: every offload must fail."""
    model = tesla_t10_model()
    node = SimulatedNode(model=model, n_cpus=1, n_gpus=1)
    small_spec = replace(TESLA_T10, memory_bytes=2048)
    from repro.gpu.device import SimulatedGpu

    node.gpus[0] = SimulatedGpu(model, 0, spec=small_spec)
    return node


class TestDeviceMemoryFallback:
    @staticmethod
    def _needs_fallback(r, limit=2048, word=4):
        return (r.k * r.k + r.m * r.k + r.m * r.m) * word > limit

    def test_numeric_falls_back_to_host(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        node = tiny_memory_node()
        nf = factorize_numeric(lap2d_small, sf, make_policy("P3"), node=node)
        # calls whose working set exceeds the 2 KiB device fell back
        big = [r for r in nf.records if self._needs_fallback(r)]
        assert big, "test problem must contain oversized fronts"
        assert all(r.policy == "P1" for r in big)
        # the small ones still offloaded
        assert any(r.policy == "P3" for r in nf.records if r.m > 0)

    def test_replay_falls_back_identically(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        node = tiny_memory_node()
        rp = replay_factorize(sf, make_policy("P3"), node=node)
        big = [r for r in rp.records if self._needs_fallback(r)]
        assert big and all(r.policy == "P1" for r in big)

    def test_fits_when_memory_sufficient(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P3"))
        assert any(r.policy == "P3" for r in nf.records)


class TestClassifierPersistence:
    @pytest.fixture(scope="class")
    def clf(self, model):
        m, k = sample_mk_cloud(120, seed=8)
        ds = collect_timing_dataset(m, k, model, seed=8)
        return train_cost_sensitive(ds, max_iter=200)

    def test_round_trip_dict(self, clf):
        restored = PolicyClassifier.from_dict(clf.to_dict())
        m, k = sample_mk_cloud(200, seed=80)
        assert np.array_equal(restored.predict(m, k), clf.predict(m, k))

    def test_round_trip_file(self, clf, tmp_path):
        path = tmp_path / "clf.json"
        clf.save(path)
        restored = PolicyClassifier.load(path)
        assert np.allclose(restored.theta, clf.theta)
        assert restored.class_names == clf.class_names

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            PolicyClassifier.from_dict({"format": "v0"})

    def test_json_is_plain_data(self, clf):
        import json

        text = json.dumps(clf.to_dict())
        assert "theta" in text


class TestScheduleAndBackend:
    """The solver's execution knobs: schedule="liu", backend=..."""

    def test_liu_schedule_same_factor_lower_peak(self):
        from repro.matrices import grid_laplacian_3d
        from repro.symbolic.stack import (
            estimate_peak_update_bytes,
            stack_minimizing_postorder,
        )

        for a in (grid_laplacian_2d(14, 11), grid_laplacian_3d(6, 5, 4),
                  random_spd(140, seed=4)):
            post = SparseCholeskySolver(a, ordering="nd").factorize()
            liu = SparseCholeskySolver(a, ordering="nd",
                                       schedule="liu").factorize()
            sf = post.symbolic
            liu_order = stack_minimizing_postorder(sf)
            assert estimate_peak_update_bytes(sf, liu_order) <= \
                estimate_peak_update_bytes(sf)
            # realized peaks agree with the estimates' ordering ...
            assert liu.factor.peak_update_bytes <= post.factor.peak_update_bytes
            # ... and the factor itself is schedule-independent
            for pp, pl in zip(post.factor.panels, liu.factor.panels):
                assert np.array_equal(pp, pl)

    def test_liu_solver_solves(self, lap2d_small):
        solver = SparseCholeskySolver(lap2d_small, ordering="amd",
                                      schedule="liu")
        b = np.ones(lap2d_small.n_rows)
        x = solver.solve(b)
        assert np.abs(lap2d_small.matvec(x) - b).max() < 1e-10

    def test_backends_produce_identical_solutions(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        xs = {}
        for backend in ("serial", "static", "dynamic"):
            node = SimulatedNode(n_cpus=2, n_gpus=1)
            solver = SparseCholeskySolver(
                lap2d_small, ordering="nd", policy="baseline",
                node=node, backend=backend,
            )
            xs[backend] = solver.solve(b, refine=False)
        assert np.array_equal(xs["serial"], xs["static"])
        assert np.array_equal(xs["static"], xs["dynamic"])

    def test_dynamic_backend_exposes_runtime(self, lap2d_small):
        node = SimulatedNode(n_cpus=4, n_gpus=0)
        solver = SparseCholeskySolver(lap2d_small, ordering="nd",
                                      node=node, backend="dynamic")
        solver.factorize()
        assert solver.parallel is not None
        assert solver.parallel.runtime.stats.steals >= 1
        assert not solver.parallel.degraded

    def test_invalid_combinations_rejected(self, lap2d_small):
        with pytest.raises(ValueError, match="schedule"):
            SparseCholeskySolver(lap2d_small, schedule="bogus")
        with pytest.raises(ValueError, match="backend"):
            SparseCholeskySolver(lap2d_small, backend="bogus")
        with pytest.raises(ValueError, match="serial"):
            SparseCholeskySolver(lap2d_small, schedule="liu", backend="static")
        with pytest.raises(ValueError, match="dynamic"):
            SparseCholeskySolver(lap2d_small, memory_budget=1 << 20)
