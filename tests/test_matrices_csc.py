"""Unit tests for the CSC container."""

import numpy as np
import pytest

from repro.matrices import COOMatrix, CSCMatrix, csc_from_dense


def dense_ref():
    return np.array(
        [
            [4.0, 0.0, -1.0, 0.0],
            [0.0, 3.0, 0.0, -2.0],
            [-1.0, 0.0, 5.0, 0.0],
            [0.0, -2.0, 0.0, 6.0],
        ]
    )


class TestConstruction:
    def test_from_coo_round_trip(self):
        d = dense_ref()
        rows, cols = np.nonzero(d)
        a = CSCMatrix.from_coo(rows, cols, d[rows, cols], d.shape)
        assert a.nnz == 8
        assert np.allclose(a.to_dense(), d)

    def test_from_coo_sums_duplicates(self):
        a = CSCMatrix.from_coo([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        assert a.nnz == 2
        assert a.to_dense()[0, 0] == 3.0

    def test_from_coo_empty(self):
        a = CSCMatrix.from_coo([], [], [], (3, 3))
        assert a.nnz == 0
        assert np.allclose(a.to_dense(), np.zeros((3, 3)))

    def test_coo_matrix_wrapper(self):
        c = COOMatrix(2, 2, [0, 1, 0], [0, 1, 0], [1.0, 2.0, 1.0])
        assert c.nnz == 3
        a = c.to_csc()
        assert a.to_dense()[0, 0] == 2.0

    def test_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0, 2], [0, 0], [1.0, 1.0])

    def test_identity(self):
        eye = CSCMatrix.identity(4, scale=2.0)
        assert np.allclose(eye.to_dense(), 2.0 * np.eye(4))

    def test_csc_from_dense_with_tolerance(self):
        d = dense_ref()
        d[0, 1] = 1e-15
        a = csc_from_dense(d, tol=1e-12)
        assert a.nnz == 8

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSCMatrix((2, 2), [0, 2], [0, 1], [1.0, 1.0])

    def test_validation_rejects_unsorted_rows(self):
        with pytest.raises(ValueError):
            CSCMatrix((3, 1), [0, 2], [2, 0], [1.0, 1.0])


class TestLinearAlgebra:
    def test_matvec_matches_dense(self, rng):
        d = dense_ref()
        a = csc_from_dense(d)
        x = rng.normal(size=4)
        assert np.allclose(a.matvec(x), d @ x)

    def test_rmatvec_matches_dense(self, rng):
        d = dense_ref()
        a = csc_from_dense(d)
        x = rng.normal(size=4)
        assert np.allclose(a.rmatvec(x), d.T @ x)

    def test_matvec_rectangular(self, rng):
        d = rng.normal(size=(5, 3))
        a = csc_from_dense(d)
        x = rng.normal(size=3)
        assert np.allclose(a.matvec(x), d @ x)
        y = rng.normal(size=5)
        assert np.allclose(a.rmatvec(y), d.T @ y)

    def test_matvec_dimension_check(self):
        a = csc_from_dense(dense_ref())
        with pytest.raises(ValueError):
            a.matvec(np.ones(5))

    def test_symmetric_matvec_from_lower(self, rng):
        d = dense_ref()
        a = csc_from_dense(d)
        lower = a.lower_triangle()
        x = rng.normal(size=4)
        assert np.allclose(lower.symmetric_matvec(x), d @ x)

    def test_diagonal(self):
        a = csc_from_dense(dense_ref())
        assert np.allclose(a.diagonal(), [4.0, 3.0, 5.0, 6.0])


class TestTransforms:
    def test_transpose(self, rng):
        d = rng.normal(size=(4, 6))
        d[np.abs(d) < 0.7] = 0.0
        a = csc_from_dense(d)
        assert np.allclose(a.transpose().to_dense(), d.T)

    def test_lower_triangle_strict(self):
        a = csc_from_dense(dense_ref())
        strict = a.lower_triangle(strict=True)
        assert np.allclose(strict.to_dense(), np.tril(dense_ref(), -1))

    def test_symmetrize_round_trip(self):
        a = csc_from_dense(dense_ref())
        low = a.lower_triangle()
        assert np.allclose(low.symmetrize_from_lower().to_dense(), dense_ref())

    def test_permute_symmetric(self):
        d = dense_ref()
        a = csc_from_dense(d)
        perm = np.array([2, 0, 3, 1])
        p = a.permute_symmetric(perm)
        assert np.allclose(p.to_dense(), d[np.ix_(perm, perm)])

    def test_permute_requires_square(self, rng):
        a = csc_from_dense(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            a.permute_symmetric(np.arange(3))

    def test_structural_symmetry(self):
        assert csc_from_dense(dense_ref()).is_structurally_symmetric()
        asym = csc_from_dense(np.triu(dense_ref()))
        assert not asym.is_structurally_symmetric()

    def test_adjacency_excludes_diagonal(self):
        a = csc_from_dense(dense_ref())
        indptr, indices = a.adjacency()
        assert indptr[-1] == 4  # 2 symmetric off-diagonal pairs
        for j in range(4):
            assert j not in indices[indptr[j]:indptr[j + 1]]

    def test_adjacency_from_lower_storage(self):
        a = csc_from_dense(dense_ref()).lower_triangle()
        indptr, indices = a.adjacency()
        assert indptr[-1] == 4

    def test_column_views_are_views(self):
        a = csc_from_dense(dense_ref())
        idx, vals = a.column(0)
        vals[0] = 99.0
        assert a.to_dense()[0, 0] == 99.0

    def test_copy_is_independent(self):
        a = csc_from_dense(dense_ref())
        b = a.copy()
        b.data[0] = -1
        assert a.data[0] != -1

    def test_astype(self):
        a = csc_from_dense(dense_ref()).astype(np.float32)
        assert a.data.dtype == np.float32

    def test_allclose(self):
        a = csc_from_dense(dense_ref())
        b = a.copy()
        assert a.allclose(b)
        b.data[0] += 1.0
        assert not a.allclose(b)
