"""Column patterns, supernodes, amalgamation, and the full SymbolicFactor."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d, grid_laplacian_3d, random_spd
from repro.matrices.csc import csc_from_dense
from repro.symbolic import (
    AmalgamationParams,
    amalgamate,
    column_counts,
    column_patterns,
    elimination_tree,
    fundamental_supernodes,
    symbolic_factorize,
)
from repro.symbolic.symbolic import factor_update_flops


def true_pattern(a, perm=None):
    d = a.to_dense() if perm is None else a.permute_symmetric(perm).to_dense()
    l = np.linalg.cholesky(d)
    return np.abs(l) > 1e-12


class TestColumnPatterns:
    @pytest.mark.parametrize(
        "matrix", ["lap2d", "rand"], ids=["laplacian", "random"]
    )
    def test_exact_fill_pattern(self, matrix, lap2d_small, rand_spd_small):
        a = lap2d_small if matrix == "lap2d" else rand_spd_small
        tree = elimination_tree(a)
        patterns = column_patterns(a, tree.parent)
        ref = true_pattern(a)
        n = a.n_rows
        for j in range(n):
            expected = np.flatnonzero(ref[:, j])
            expected = expected[expected > j]
            # SPD Cholesky has no exact cancellation, so symbolic == true
            assert np.array_equal(patterns[j], expected), f"column {j}"

    def test_counts_match_patterns(self, lap2d_small):
        tree = elimination_tree(lap2d_small)
        pats = column_patterns(lap2d_small, tree.parent)
        cnts = column_counts(lap2d_small, tree.parent)
        assert np.array_equal(cnts, [p.size + 1 for p in pats])

    def test_diagonal_matrix(self):
        a = csc_from_dense(np.eye(4) * 2)
        tree = elimination_tree(a)
        pats = column_patterns(a, tree.parent)
        assert all(p.size == 0 for p in pats)


class TestFundamentalSupernodes:
    def test_dense_block_is_one_supernode(self):
        d = np.full((5, 5), -1.0) + 7 * np.eye(5)
        a = csc_from_dense(d)
        tree = elimination_tree(a)
        cnts = column_counts(a, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        assert np.array_equal(ptr, [0, 5])

    def test_diagonal_matrix_all_singletons(self):
        a = csc_from_dense(np.eye(4))
        tree = elimination_tree(a)
        cnts = column_counts(a, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        assert np.array_equal(ptr, [0, 1, 2, 3, 4])

    def test_partition_is_contiguous_and_complete(self, lap2d_small):
        tree = elimination_tree(lap2d_small)
        cnts = column_counts(lap2d_small, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        assert ptr[0] == 0 and ptr[-1] == lap2d_small.n_rows
        assert (np.diff(ptr) > 0).all()

    def test_empty(self):
        ptr = fundamental_supernodes(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(ptr, [0])


class TestAmalgamation:
    def test_disabled_returns_input(self, lap2d_small):
        tree = elimination_tree(lap2d_small)
        cnts = column_counts(lap2d_small, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        out = amalgamate(ptr, tree.parent, cnts, AmalgamationParams(max_width=0))
        assert np.array_equal(out, ptr)

    def test_reduces_supernode_count(self):
        a = grid_laplacian_2d(9, 9)
        tree = elimination_tree(a)
        cnts = column_counts(a, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        out = amalgamate(ptr, tree.parent, cnts)
        assert out.size <= ptr.size
        assert out[0] == 0 and out[-1] == ptr[-1]
        assert (np.diff(out) > 0).all()

    def test_boundaries_subset_of_fundamental(self):
        # amalgamation only merges: every remaining boundary was a
        # fundamental boundary
        a = random_spd(90, seed=5)
        tree = elimination_tree(a)
        cnts = column_counts(a, tree.parent)
        ptr = fundamental_supernodes(tree.parent, cnts)
        out = amalgamate(ptr, tree.parent, cnts)
        assert set(out.tolist()) <= set(ptr.tolist())


class TestSymbolicFactor:
    @pytest.mark.parametrize("ordering", ["natural", "amd", "nd"])
    def test_pattern_superset_and_validates(self, ordering, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering=ordering)
        sf.validate()
        ref = true_pattern(lap2d_small, sf.perm)
        ours = np.zeros_like(ref)
        for s in range(sf.n_supernodes):
            f, l = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
            for j in range(f, l):
                rr = sf.rows[s][sf.rows[s] >= j]
                ours[rr, j] = True
        assert not (ref & ~ours).any()

    def test_no_amalgamation_gives_exact_nnz(self, lap2d_small):
        sf = symbolic_factorize(
            lap2d_small, ordering="amd",
            amalgamation=AmalgamationParams(max_width=0),
        )
        assert sf.nnz_factor == int(true_pattern(lap2d_small, sf.perm).sum())

    def test_amalgamation_adds_bounded_zeros(self, lap2d_small):
        exact = symbolic_factorize(
            lap2d_small, ordering="amd",
            amalgamation=AmalgamationParams(max_width=0),
        )
        relaxed = symbolic_factorize(lap2d_small, ordering="amd")
        assert relaxed.n_supernodes <= exact.n_supernodes
        assert relaxed.nnz_factor >= exact.nnz_factor
        # zeros stay within a small multiple of the exact factor
        assert relaxed.nnz_factor <= 2.0 * exact.nnz_factor

    def test_mk_pairs_consistent(self, sf_lap3d):
        mk = sf_lap3d.mk_pairs()
        assert mk.shape == (sf_lap3d.n_supernodes, 2)
        for s in range(sf_lap3d.n_supernodes):
            assert mk[s, 1] == sf_lap3d.width(s)
            assert mk[s, 0] == sf_lap3d.update_size(s)
        assert (mk[:, 1] >= 1).all()
        assert (mk[:, 0] >= 0).all()

    def test_total_flops_positive_and_additive(self, sf_lap3d):
        total = sf_lap3d.total_flops()
        manual = sum(
            sum(factor_update_flops(int(m), int(k)))
            for m, k in sf_lap3d.mk_pairs()
        )
        assert total == pytest.approx(manual)
        assert total > 0

    def test_nnz_by_column_sums_to_nnz_factor(self, sf_lap3d):
        assert sf_lap3d.factor_nnz_by_column().sum() == sf_lap3d.nnz_factor

    def test_roots_have_no_update(self, sf_lap3d):
        for s in range(sf_lap3d.n_supernodes):
            if sf_lap3d.sparent[s] == -1:
                assert sf_lap3d.update_size(s) == 0

    def test_spost_is_valid_schedule(self, sf_lap3d):
        seen = set()
        for s in sf_lap3d.spost:
            for c in sf_lap3d.schildren()[int(s)]:
                assert c in seen
            seen.add(int(s))

    def test_custom_permutation(self, lap2d_small):
        perm = np.arange(lap2d_small.n_rows)[::-1].copy()
        sf = symbolic_factorize(lap2d_small, perm=perm)
        sf.validate()
        assert sf.ordering == "custom"

    def test_rejects_nonsquare(self, rng):
        a = csc_from_dense(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            symbolic_factorize(a)

    def test_flop_counts_formulas(self):
        np_, nt, ns = factor_update_flops(10, 4)
        assert np_ == pytest.approx(4**3 / 3)
        assert nt == pytest.approx(10 * 16)
        assert ns == pytest.approx(100 * 4)
