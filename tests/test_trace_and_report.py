"""Chrome-trace export and the report assembler."""

import json

import pytest

from repro.gpu.clock import TaskGraph, schedule_graph
from repro.gpu.trace import tasks_to_chrome_trace, write_chrome_trace
from repro.report import build_report


@pytest.fixture
def scheduled_tasks():
    g = TaskGraph()
    a = g.add("potrf", "cpu0", 1e-3, category="potrf")
    b = g.add("h2d", "gpu0.h2d", 5e-4, category="copy")
    g.add("trsm", "gpu0.compute", 2e-3, deps=(a, b), category="trsm")
    schedule_graph(g)
    return g.tasks


class TestChromeTrace:
    def test_event_structure(self, scheduled_tasks):
        doc = tasks_to_chrome_trace(scheduled_tasks)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == 3
        assert len(metas) == 3          # one thread_name per engine
        names = {m["args"]["name"] for m in metas}
        assert names == {"cpu0", "gpu0.h2d", "gpu0.compute"}

    def test_times_scaled_to_microseconds(self, scheduled_tasks):
        doc = tasks_to_chrome_trace(scheduled_tasks)
        trsm = next(e for e in doc["traceEvents"] if e.get("name") == "trsm")
        assert trsm["dur"] == pytest.approx(2e-3 * 1e6)
        assert trsm["ts"] == pytest.approx(1e-3 * 1e6)  # starts after potrf

    def test_unscheduled_rejected(self):
        g = TaskGraph()
        g.add("x", "cpu0", 1.0)
        with pytest.raises(ValueError):
            tasks_to_chrome_trace(g.tasks)

    def test_engine_rows_ordered_by_kind(self):
        # regression: engine tids must follow _ENGINE_ORDER (cpu, gpu,
        # nic) even when the task stream mentions the engines in a
        # different order
        g = TaskGraph()
        a = g.add("k0", "rank1.nic", 1e-4, category="comm")
        b = g.add("k1", "gpu0.compute", 1e-3, deps=(a,), category="syrk")
        c = g.add("k2", "gpu0.h2d", 5e-4, deps=(b,), category="copy")
        g.add("k3", "cpu0", 1e-3, deps=(c,), category="potrf")
        schedule_graph(g)
        doc = tasks_to_chrome_trace(g.tasks)
        metas = sorted(
            (e for e in doc["traceEvents"] if e["ph"] == "M"),
            key=lambda e: e["tid"],
        )
        assert [m["args"]["name"] for m in metas] == [
            "cpu0", "gpu0.compute", "gpu0.h2d", "rank1.nic"
        ]
        assert [m["tid"] for m in metas] == [0, 1, 2, 3]

    def test_engine_rows_group_node_major(self):
        # regression: namespaced engines (node{i}./rank{i}.) group by
        # node first, then by kind within the node; un-namespaced lanes
        # keep their old position ahead of every node
        g = TaskGraph()
        a = g.add("k0", "node1.nic", 1e-4, category="comm")
        b = g.add("k1", "node1.cpu", 1e-3, deps=(a,), category="potrf")
        c = g.add("k2", "node0.gpu", 5e-4, deps=(b,), category="syrk")
        d = g.add("k3", "node0.cpu", 1e-3, deps=(c,), category="potrf")
        g.add("k4", "cpu0", 1e-3, deps=(d,), category="potrf")
        schedule_graph(g)
        doc = tasks_to_chrome_trace(g.tasks)
        metas = sorted(
            (e for e in doc["traceEvents"] if e["ph"] == "M"),
            key=lambda e: e["tid"],
        )
        assert [m["args"]["name"] for m in metas] == [
            "cpu0", "node0.cpu", "node0.gpu", "node1.cpu", "node1.nic"
        ]

    def test_write_round_trip(self, scheduled_tasks, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, scheduled_tasks)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_factorization_trace_end_to_end(self, lap2d_small, tmp_path):
        from repro.multifrontal.numeric import replay_factorize
        from repro.symbolic import symbolic_factorize
        from repro.policies import make_policy
        from repro.gpu import SimulatedNode

        sf = symbolic_factorize(lap2d_small, ordering="amd")
        node = SimulatedNode()
        # collect every scheduled task through a tracking wrapper run
        rp = replay_factorize(sf, make_policy("P3"), node=node)
        # reconstruct a small trace from the records (coarse per-call)
        g = TaskGraph()
        for r in rp.records[:20]:
            g.add(f"fu:{r.sid}", "cpu0", max(r.end - r.start, 1e-9))
        schedule_graph(g)
        path = tmp_path / "factor.json"
        write_chrome_trace(path, g.tasks)
        assert path.exists()


class TestReport:
    def test_builds_from_fixture_dir(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table7_end_to_end.txt").write_text("TABLE7\n")
        (results / "zzz_custom.txt").write_text("CUSTOM\n")
        out = tmp_path / "REPORT.md"
        n = build_report(str(results), str(out))
        assert n == 2
        text = out.read_text()
        assert "## table7_end_to_end" in text
        assert text.index("table7_end_to_end") < text.index("zzz_custom")

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(str(tmp_path / "nope"), str(tmp_path / "r.md"))

    def test_real_results_if_present(self, tmp_path):
        import os

        results = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "benchmarks", "results"
        )
        if not os.path.isdir(results):
            pytest.skip("benchmarks not run yet")
        out = tmp_path / "REPORT.md"
        n = build_report(results, str(out))
        assert n >= 10
        assert "Table VII" in out.read_text()
