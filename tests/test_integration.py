"""End-to-end integration: the full pipeline on a suite matrix, hybrid
ordering of policies, and cross-module consistency."""

import numpy as np
import pytest

from repro import (
    SparseCholeskySolver,
    elasticity_3d,
    grid_laplacian_3d,
)
from repro.analysis import GridBinner, time_fraction_grid
from repro.autotune import train_default_classifier
from repro.gpu import SimulatedNode, tesla_t10_model
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import BaselineHybrid, IdealHybrid, ModelHybrid, make_policy
from repro.symbolic import symbolic_factorize


@pytest.fixture(scope="module")
def problem():
    return grid_laplacian_3d(9, 9, 9)


@pytest.fixture(scope="module")
def sf(problem):
    return symbolic_factorize(problem, ordering="nd")


@pytest.fixture(scope="module")
def model():
    return tesla_t10_model()


@pytest.fixture(scope="module")
def policy_times(problem, sf, model):
    """Simulated end-to-end seconds under each policy (shared)."""
    from repro.multifrontal import factorize_numeric

    out = {}
    for name in ("P1", "P2", "P3", "P4"):
        node = SimulatedNode(model=model, n_cpus=1, n_gpus=1)
        nf = factorize_numeric(problem, sf, make_policy(name), node=node)
        out[name] = nf.makespan
    for label, pol in (
        ("baseline", BaselineHybrid()),
        ("ideal", IdealHybrid(model)),
        ("model", ModelHybrid(train_default_classifier(model))),
    ):
        node = SimulatedNode(model=model, n_cpus=1, n_gpus=1)
        nf = factorize_numeric(problem, sf, pol, node=node)
        out[label] = nf.makespan
    return out


class TestPolicyOrdering:
    """The paper's qualitative results must hold end to end."""

    def test_hybrids_beat_static_policies(self, policy_times):
        best_static = min(policy_times[p] for p in ("P1", "P2", "P3", "P4"))
        assert policy_times["ideal"] <= best_static * 1.001

    def test_ideal_is_fastest_hybrid(self, policy_times):
        assert policy_times["ideal"] <= policy_times["model"] * 1.001
        assert policy_times["ideal"] <= policy_times["baseline"] * 1.001

    def test_model_within_paper_band_of_ideal(self, policy_times):
        # paper: model hybrid within ~2% of ideal; we allow a little slack
        assert policy_times["model"] <= policy_times["ideal"] * 1.10

    def test_model_at_least_matches_baseline(self, policy_times):
        assert policy_times["model"] <= policy_times["baseline"] * 1.02

    def test_pure_gpu_policies_lose_on_small_problems(self, policy_times):
        # this scaled problem has mostly small fronts: P3/P4 everywhere is
        # slower than the hybrid (Fig. 11's low-end behaviour)
        assert policy_times["ideal"] < policy_times["P3"]
        assert policy_times["ideal"] < policy_times["P4"]


class TestNumericalAgreementAcrossPolicies:
    def test_all_policies_agree_on_solution(self, problem):
        b = np.ones(problem.n_rows)
        xs = {}
        for name in ("P1", "P2", "P3", "P4", "baseline"):
            s = SparseCholeskySolver(problem, ordering="nd", policy=name)
            xs[name] = s.solve(b, tol=1e-12)
        ref = xs["P1"]
        for name, x in xs.items():
            assert np.abs(x - ref).max() < 1e-8, name


class TestElasticityPipeline:
    def test_vector_problem_end_to_end(self):
        a = elasticity_3d(5, 5, 5)
        s = SparseCholeskySolver(a, ordering="nd", policy="baseline")
        s.analyze().factorize()
        rng = np.random.default_rng(3)
        x_true = rng.normal(size=a.n_rows)
        x = s.solve(a.matvec(x_true))
        assert np.abs(x - x_true).max() < 1e-8
        # elasticity problems have wider supernodes than scalar ones
        widths = np.diff(s.symbolic.super_ptr)
        assert widths.max() >= 3


class TestInstrumentationConsistency:
    def test_records_feed_the_analysis_layer(self, problem, sf):
        from repro.multifrontal import factorize_numeric

        nf = factorize_numeric(problem, sf, BaselineHybrid())
        grid = time_fraction_grid(nf.records, GridBinner(bin_size=50, extent=800))
        assert grid.sum() == pytest.approx(1.0)

    def test_component_times_sum_close_to_busy(self, problem, sf):
        from repro.multifrontal import factorize_numeric

        node = SimulatedNode(n_cpus=1, n_gpus=1)
        nf = factorize_numeric(problem, sf, make_policy("P1"), node=node)
        busy = sum(sum(r.components.values()) for r in nf.records)
        # serial P1: makespan = busy work + assembly
        assert nf.makespan == pytest.approx(busy + nf.assembly_seconds, rel=1e-6)


class TestParallelIntegration:
    def test_parallel_speedups_ordered(self, problem, sf):
        serial = list_schedule(sf, make_policy("P1"), make_worker_pool(1, 0)).makespan
        t4 = list_schedule(sf, make_policy("P1"), make_worker_pool(4, 0)).makespan
        hybrid1 = list_schedule(sf, BaselineHybrid(), make_worker_pool(1, 1)).makespan
        hybrid2 = list_schedule(sf, BaselineHybrid(), make_worker_pool(2, 2)).makespan
        assert t4 < serial
        assert hybrid2 <= hybrid1
