"""Tiered factor cache: policies, spill/promote movement, TTL expiry,
per-tier capacity rejection, fleet shared-tier sharing and the
peer-fetch-vs-refactorize decision boundary.

Everything runs on the injectable :class:`ManualClock` and synthetic
payloads with explicit byte sizes, so every movement is deterministic
and assertable down to the byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import InterconnectParams, ShardedSolverService
from repro.service import (
    ManualClock,
    SolverService,
    StorageTier,
    TierConfig,
    TieredFactorCache,
    TierSpec,
)
from repro.service.tiers import (
    PLACEMENT_POLICIES,
    TRANSFER_POLICIES,
    TTL_POLICIES,
    CheapestTransfer,
    DropPlacement,
    FixedTtl,
    NoTtl,
    PullOnRead,
    ReadThrough,
    SpillPlacement,
    ThresholdPlacement,
    TierEntry,
    default_disk_spec,
    default_object_spec,
    make_placement_policy,
    make_transfer_policy,
    make_ttl_policy,
)


class FakeFactor:
    """Payload with a simulated production cost, like a NumericFactor."""

    def __init__(self, tag: str, makespan: float = 0.0):
        self.tag = tag
        self.makespan = makespan


def make_cache(
    *,
    ram=1000,
    disk=4000,
    obj=8000,
    placement="spill",
    transfer="pull-on-read",
    ttl="no-ttl",
    clock=None,
    disk_spec=None,
    object_spec=None,
):
    lower = []
    if disk is not None:
        lower.append(
            StorageTier(disk_spec or TierSpec("disk", disk, 5e8, 5e-3))
        )
    if obj is not None:
        lower.append(
            StorageTier(object_spec or TierSpec("object", obj, 2.5e8, 5e-2))
        )
    return TieredFactorCache(
        max_bytes=ram, lower_tiers=lower, placement=placement,
        transfer=transfer, ttl=ttl, clock=clock,
    )


# ----------------------------------------------------------------------
# tier model
# ----------------------------------------------------------------------
class TestTierSpec:
    def test_transfer_time_is_latency_plus_bandwidth(self):
        spec = TierSpec("t", 100, bandwidth=1e6, latency=0.5)
        assert spec.transfer_time(1_000_000) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TierSpec("t", 0, 1e6, 0.0)
        with pytest.raises(ValueError, match="bandwidth"):
            TierSpec("t", 10, 0.0, 0.0)
        with pytest.raises(ValueError, match="latency"):
            TierSpec("t", 10, 1e6, -1.0)

    def test_default_specs_are_ordered_slower_downward(self):
        disk, obj = default_disk_spec(), default_object_spec()
        assert disk.bandwidth > obj.bandwidth
        assert disk.latency < obj.latency


class TestStorageTier:
    def test_put_evicts_lru_to_fit_and_returns_victims(self):
        t = StorageTier(TierSpec("d", 1000, 1e6, 0.0))
        for i in range(3):
            ok, evicted = t.put(
                ("numeric", f"k{i}"), TierEntry(f"p{i}", 400, 0.0)
            )
            assert ok
        # third insert displaced k0 (coldest)
        assert [k for k, _ in evicted] == [("numeric", "k0")]
        assert t.resident_bytes == 800
        assert t.stats["evictions"] == 1

    def test_oversize_entry_rejected_not_inserted(self):
        t = StorageTier(TierSpec("d", 100, 1e6, 0.0))
        ok, evicted = t.put(("numeric", "big"), TierEntry("p", 101, 0.0))
        assert not ok and evicted == []
        assert len(t) == 0
        assert t.stats["rejected_oversize"] == 1

    def test_read_write_accounting(self):
        t = StorageTier(TierSpec("d", 1000, 1e6, 0.5))
        t.put(("numeric", "k"), TierEntry("p", 100, 0.0))
        assert t.write_seconds == pytest.approx(0.5 + 100 / 1e6)
        seconds = t.account_read(100)
        assert seconds == pytest.approx(0.5 + 100 / 1e6)
        assert t.read_seconds == pytest.approx(seconds)
        assert t.stats["read_bytes"] == 100
        assert t.stats["write_bytes"] == 100

    def test_remove_and_clear(self):
        t = StorageTier(TierSpec("d", 1000, 1e6, 0.0))
        t.put(("numeric", "k"), TierEntry("p", 100, 0.0))
        entry = t.remove(("numeric", "k"))
        assert entry.payload == "p" and t.resident_bytes == 0
        assert t.remove(("numeric", "k")) is None
        t.put(("numeric", "k2"), TierEntry("q", 50, 0.0))
        dropped = t.clear()
        assert [e.payload for e in dropped] == ["q"]
        assert t.resident_bytes == 0


# ----------------------------------------------------------------------
# policy registries
# ----------------------------------------------------------------------
class TestPolicyRegistry:
    def test_registries_contain_the_documented_policies(self):
        assert set(PLACEMENT_POLICIES) == {"spill", "drop", "spill-threshold"}
        assert set(TRANSFER_POLICIES) == {
            "pull-on-read", "read-through", "cheapest-transfer",
        }
        assert set(TTL_POLICIES) == {"no-ttl", "fixed-ttl"}

    def test_resolve_by_name_and_passthrough(self):
        assert isinstance(make_placement_policy("drop"), DropPlacement)
        assert isinstance(make_transfer_policy("read-through"), ReadThrough)
        assert isinstance(make_ttl_policy("no-ttl"), NoTtl)
        inst = SpillPlacement()
        assert make_placement_policy(inst) is inst

    def test_unknown_name_raises_with_known_set(self):
        with pytest.raises(KeyError, match="spill-threshold"):
            make_placement_policy("nope")
        with pytest.raises(KeyError, match="pull-on-read"):
            make_transfer_policy("nope")
        with pytest.raises(KeyError, match="fixed-ttl"):
            make_ttl_policy("nope")

    def test_factory_kwargs_forwarded(self):
        pol = make_placement_policy("spill-threshold", spill_factor=2.5)
        assert pol.spill_factor == 2.5
        ttl = make_ttl_policy("fixed-ttl", ttl_seconds=7.0)
        assert ttl.ttl_seconds == 7.0


class TestPlacementPolicies:
    def _tier(self, bandwidth=1e6, latency=0.0):
        return StorageTier(TierSpec("d", 10_000, bandwidth, latency))

    def test_spill_and_drop(self):
        entry = TierEntry("p", 100, 0.0, produce_seconds=1.0)
        assert SpillPlacement().should_spill("k", entry, self._tier())
        assert not DropPlacement().should_spill("k", entry, self._tier())

    def test_threshold_boundary(self):
        # write time = 0.001 s for 1000 B at 1e6 B/s
        tier = self._tier(bandwidth=1e6, latency=0.0)
        pol = ThresholdPlacement(spill_factor=1.0)
        cheap_to_remake = TierEntry("p", 1000, 0.0, produce_seconds=0.0005)
        dear_to_remake = TierEntry("p", 1000, 0.0, produce_seconds=0.01)
        at_boundary = TierEntry("p", 1000, 0.0, produce_seconds=0.001)
        assert not pol.should_spill("k", cheap_to_remake, tier)
        assert pol.should_spill("k", dear_to_remake, tier)
        assert pol.should_spill("k", at_boundary, tier)  # <= is inclusive

    def test_threshold_unknown_cost_always_spills(self):
        pol = ThresholdPlacement()
        entry = TierEntry("p", 1000, 0.0, produce_seconds=0.0)
        assert pol.should_spill("k", entry, self._tier())

    def test_threshold_validates_factor(self):
        with pytest.raises(ValueError):
            ThresholdPlacement(spill_factor=0.0)


class TestTransferPolicies:
    def _ctx(self, ram=1000, stored=800):
        cache = make_cache(ram=ram, disk=4000, obj=None)
        cache.put_numeric("filler", "f", nbytes=stored)
        tier = cache.tier("disk")
        return cache, tier

    def test_pull_on_read_promotes_when_it_fits_ram_at_all(self):
        cache, tier = self._ctx()
        small = TierEntry("p", 900, 0.0)
        giant = TierEntry("p", 1001, 0.0)
        assert PullOnRead().should_promote("k", small, tier, cache)
        assert not PullOnRead().should_promote("k", giant, tier, cache)

    def test_read_through_never_promotes(self):
        cache, tier = self._ctx()
        assert not ReadThrough().should_promote(
            "k", TierEntry("p", 1, 0.0), tier, cache
        )

    def test_cheapest_transfer_needs_free_headroom(self):
        cache, tier = self._ctx(ram=1000, stored=800)
        fits_free = TierEntry("p", 200, 0.0)
        would_evict = TierEntry("p", 201, 0.0)
        assert CheapestTransfer().should_promote("k", fits_free, tier, cache)
        assert not CheapestTransfer().should_promote(
            "k", would_evict, tier, cache
        )


class TestTtlPolicies:
    def test_no_ttl_never_expires(self):
        assert not NoTtl().expired(0.0, 1e12)

    def test_fixed_ttl_boundary_inclusive(self):
        ttl = FixedTtl(ttl_seconds=10.0)
        assert not ttl.expired(0.0, 9.999)
        assert ttl.expired(0.0, 10.0)
        assert ttl.expired(0.0, 11.0)

    def test_fixed_ttl_validates(self):
        with pytest.raises(ValueError):
            FixedTtl(ttl_seconds=0.0)

    def test_manual_clock(self):
        clk = ManualClock(5.0)
        clk.advance(2.5)
        assert clk.now() == clk() == 7.5
        with pytest.raises(ValueError):
            clk.advance(-1.0)


# ----------------------------------------------------------------------
# tiered cache movement
# ----------------------------------------------------------------------
class TestSpillAndPromote:
    def test_ram_eviction_spills_to_disk(self):
        cache = make_cache(ram=1000)
        for i in range(3):
            assert cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        assert cache.stored_bytes == 800
        assert cache.tier("disk").resident_bytes == 400
        stats = cache.tier_stats()
        assert stats["ram"]["spilled_out"] == 1
        assert stats["disk"]["spilled_in_bytes"] == 400
        assert cache.check_conservation() == []

    def test_promotion_moves_entry_back_to_ram(self):
        cache = make_cache(ram=1000)
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        # k0 now on disk; reading it promotes (pull-on-read) and the
        # displaced k1 spills back down — a move, never a copy
        look = cache.lookup("nosym", "k0")
        assert look.tier == "numeric" and look.numeric.tag == "f0"
        assert cache.get_numeric("k0").tag == "f0"
        keys_by_tier = {
            "ram": cache.keys(),
            "disk": cache.tier("disk").keys(),
        }
        assert ("numeric", "k0") in keys_by_tier["ram"]
        assert ("numeric", "k0") not in keys_by_tier["disk"]
        assert ("numeric", "k1") in keys_by_tier["disk"]
        assert cache.tier_stats()["disk"]["promoted_out"] == 1
        assert cache.check_conservation() == []

    def test_disk_eviction_cascades_to_object_tier(self):
        cache = make_cache(ram=400, disk=400, obj=4000)
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        # k2 in RAM, k1 on disk, k0 pushed all the way to the object tier
        assert cache.resident_bytes_by_tier() == {
            "ram": 400, "disk": 400, "object": 400,
        }
        assert cache.get_numeric("k0") is not None
        assert cache.check_conservation() == []

    def test_drop_policy_keeps_legacy_behaviour(self):
        cache = make_cache(ram=1000, placement="drop")
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        assert cache.tier("disk").resident_bytes == 0
        assert cache.get_numeric("k0") is None
        assert cache.ledger["bytes_dropped"] == 400
        assert cache.check_conservation() == []

    def test_capacity_rejection_at_each_tier(self):
        # entry too big for RAM and disk but not the object tier lands
        # on the object tier; one too big for every tier is dropped
        cache = make_cache(ram=100, disk=200, obj=400)
        assert cache.put_numeric("mid", FakeFactor("m"), nbytes=300)
        assert cache.resident_bytes_by_tier() == {
            "ram": 0, "disk": 0, "object": 300,
        }
        assert cache.tier("disk").stats["rejected_oversize"] == 1
        assert not cache.put_numeric("huge", FakeFactor("h"), nbytes=500)
        assert cache.get_numeric("huge") is None
        assert cache.check_conservation() == []

    def test_read_through_serves_in_place(self):
        cache = make_cache(ram=1000, transfer="read-through")
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        assert cache.get_numeric("k0").tag == "f0"
        assert ("numeric", "k0") in cache.tier("disk").keys()  # not moved
        assert cache.tier("disk").stats["hits"] == 1
        assert cache.check_conservation() == []

    def test_lower_tier_read_accrues_transfer_time(self):
        disk_spec = TierSpec("disk", 4000, bandwidth=1e6, latency=0.5)
        cache = make_cache(ram=1000, disk=4000, obj=None, disk_spec=disk_spec)
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        spill_cost = disk_spec.transfer_time(400)
        assert cache.transfer_seconds == pytest.approx(spill_cost)
        # read k0 + the displaced k1 spilling back down: two more writes
        cache.get_numeric("k0")
        assert cache.transfer_seconds == pytest.approx(3 * spill_cost)

    def test_overwrite_counts_replaced_bytes_as_dropped(self):
        cache = make_cache(ram=1000)
        cache.put_numeric("k", FakeFactor("v1"), nbytes=300)
        cache.put_numeric("k", FakeFactor("v2"), nbytes=500)
        assert cache.ledger["bytes_inserted"] == 800
        assert cache.ledger["bytes_dropped"] == 300
        assert cache.check_conservation() == []

    def test_fresh_insert_purges_stale_lower_copy(self):
        cache = make_cache(ram=1000)
        for i in range(3):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        assert ("numeric", "k0") in cache.tier("disk").keys()
        cache.put_numeric("k0", FakeFactor("fresh"), nbytes=400)
        assert ("numeric", "k0") not in cache.tier("disk").keys()
        assert cache.get_numeric("k0").tag == "fresh"
        assert cache.check_conservation() == []

    def test_clear_empties_private_tiers_and_balances_ledger(self):
        cache = make_cache(ram=1000)
        for i in range(4):
            cache.put_numeric(f"k{i}", FakeFactor(f"f{i}"), nbytes=400)
        cache.clear()
        assert cache.total_resident_bytes() == 0
        assert cache.check_conservation() == []

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TieredFactorCache(
                max_bytes=100,
                lower_tiers=[
                    StorageTier(TierSpec("disk", 10, 1e6, 0.0)),
                    StorageTier(TierSpec("disk", 10, 1e6, 0.0)),
                ],
            )


class TestTtlExpiry:
    def test_ram_entry_expires_lazily_off_the_injected_clock(self):
        clk = ManualClock()
        cache = make_cache(ram=1000, ttl=FixedTtl(ttl_seconds=10.0), clock=clk)
        cache.put_numeric("k", FakeFactor("f"), nbytes=100)
        clk.advance(9.0)
        assert cache.get_numeric("k") is not None
        clk.advance(1.0)
        assert cache.get_numeric("k") is None
        assert cache.tier_stats()["ram"]["expired"] == 1
        assert cache.check_conservation() == []

    def test_lower_tier_entry_expires_and_is_never_served(self):
        clk = ManualClock()
        cache = make_cache(ram=400, ttl=FixedTtl(ttl_seconds=10.0), clock=clk)
        cache.put_numeric("old", FakeFactor("old"), nbytes=400)
        cache.put_numeric("new", FakeFactor("new"), nbytes=400)  # old → disk
        clk.advance(20.0)
        assert cache.get_numeric("old") is None
        assert cache.tier("disk").stats["expired"] == 1
        assert cache.peek_numeric("old") is None  # peek honours TTL too
        assert cache.check_conservation() == []

    def test_promotion_preserves_the_original_timestamp(self):
        clk = ManualClock()
        cache = make_cache(ram=400, ttl=FixedTtl(ttl_seconds=10.0), clock=clk)
        cache.put_numeric("a", FakeFactor("a"), nbytes=400)
        clk.advance(5.0)
        cache.put_numeric("b", FakeFactor("b"), nbytes=400)  # a → disk
        assert cache.get_numeric("a") is not None  # promoted back at t=5
        clk.advance(5.0)  # a is now 10 s old even though promoted at 5 s
        assert cache.get_numeric("a") is None

    def test_tier_config_ttl_seconds_shorthand(self):
        clk = ManualClock()
        cache = TierConfig(
            ram_bytes=1000, ttl_seconds=5.0, clock=clk
        ).build()
        cache.put_numeric("k", FakeFactor("f"), nbytes=10)
        clk.advance(5.0)
        assert cache.get_numeric("k") is None


# ----------------------------------------------------------------------
# service integration
# ----------------------------------------------------------------------
class TestServiceTiering:
    def test_tiering_and_cache_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SolverService(
                cache=TieredFactorCache(max_bytes=100),
                tiering=TierConfig(ram_bytes=100),
            )

    def test_solve_spill_then_numeric_hit_from_disk(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        cfg = TierConfig(
            ram_bytes=50_000,
            disk=TierSpec("disk", 10_000_000, 5e8, 5e-3),
            object_store=None,
        )
        with SolverService(n_workers=1, policy="P1", tiering=cfg) as svc:
            first = svc.solve(lap2d_small, b)
            assert first.tier == "miss"
            _, num_key = svc.keys_for(lap2d_small)
            entry = svc.cache.peek_numeric_entry(num_key)
            assert entry is not None
            # force the factor out of RAM with synthetic filler
            for i in range(4):
                svc.cache.put_numeric(
                    f"filler{i}", FakeFactor(f"f{i}"), nbytes=20_000
                )
            assert ("numeric", num_key) not in svc.cache.keys()
            assert svc.cache.tier("disk").peek(("numeric", num_key))
            second = svc.solve(lap2d_small, b)
            assert second.tier == "numeric"  # served through the tiers
            np.testing.assert_array_equal(first.x, second.x)
            assert svc.metrics.counter("numeric_factorizations") == 1
            assert svc.cache.check_conservation() == []

    def test_health_and_report_surface_tiers(self, lap2d_small):
        cfg = TierConfig(ram_bytes=1 << 20)
        with SolverService(n_workers=1, tiering=cfg) as svc:
            svc.solve(lap2d_small, np.ones(lap2d_small.n_rows))
            h = svc.health()
            assert set(h["cache_tiers"]) == {"ram", "disk", "object"}
            assert h["cache_resident_bytes"] >= h["cache_tiers"]["ram"][
                "resident_bytes"
            ]
            rep = svc.report()
            assert rep["cache"]["ledger"]["bytes_inserted"] > 0
            assert "tiers" in rep["cache"]
            # per-tier gauges flow into the metrics exposition
            text = svc.metrics.render_text()
            assert "tier.ram.resident_bytes" in text
            assert "tier.disk.capacity_bytes" in text
            assert "tier.transfer_seconds" in text

    def test_timed_out_request_populates_no_tier(self, lap2d_small):
        cfg = TierConfig(ram_bytes=1 << 20)
        with SolverService(n_workers=1, policy="P1", tiering=cfg) as svc:
            req = svc.submit(
                lap2d_small, np.ones(lap2d_small.n_rows), timeout=-1.0
            )
            with pytest.raises(TimeoutError):
                req.result(timeout=60)
            assert svc.cache.total_entries() == 0
            assert svc.cache.check_conservation() == []

    def test_degraded_request_populates_no_numeric_tier(self, lap2d_small):
        from repro.runtime import FaultInjector

        cfg = TierConfig(ram_bytes=1 << 20)
        with SolverService(
            n_workers=1, policy="P4", ordering="amd", backend="dynamic",
            faults=FaultInjector(kernel_failure_rate=1.0), tiering=cfg,
        ) as svc:
            out = svc.solve(lap2d_small, np.ones(lap2d_small.n_rows))
            assert out.degraded
            _, num_key = svc.keys_for(lap2d_small)
            assert not svc.cache.has_numeric(num_key)
            numeric_keys = [
                k for k in svc.cache.keys() if k[0] == "numeric"
            ] + [
                k for name in ("disk", "object")
                for k in svc.cache.tier(name).keys() if k[0] == "numeric"
            ]
            assert numeric_keys == []


# ----------------------------------------------------------------------
# fleet: shared tier + peer fetch
# ----------------------------------------------------------------------
def tiny_tiering(ram=60_000):
    return TierConfig(
        ram_bytes=ram,
        disk=None,  # shards spill straight to the shared object tier
        object_store=TierSpec("object", 16 << 20, 2.5e8, 5e-2),
    )


class TestFleetSharedTier:
    def test_shards_chain_one_shared_object_tier(self):
        fleet = ShardedSolverService(n_nodes=3, tiering=tiny_tiering())
        with fleet:
            tiers = [s.cache.tier("object") for s in fleet.shards]
            assert all(t is fleet.shared_tier for t in tiers)
            assert fleet.shared_tier.shared

    def test_evicted_on_shard_a_served_from_shared_tier_by_shard_b(
        self, lap2d_small
    ):
        b = np.ones(lap2d_small.n_rows)
        fleet = ShardedSolverService(
            n_nodes=2, tiering=tiny_tiering(), peer_fetch="off"
        )
        with fleet:
            a_shard, b_shard = fleet.shards
            first = a_shard.solve(lap2d_small, b)
            assert first.tier == "miss"
            _, num_key = a_shard.keys_for(lap2d_small)
            # push the factor out of A's RAM into the shared tier
            for i in range(4):
                a_shard.cache.put_numeric(
                    f"filler{i}", FakeFactor(f"f{i}"), nbytes=30_000
                )
            assert ("numeric", num_key) in fleet.shared_tier.keys()
            assert a_shard.cache.ledger["bytes_exported"] > 0
            # shard B never computed this factor, yet hits numeric
            second = b_shard.solve(lap2d_small, b)
            assert second.tier == "numeric"
            np.testing.assert_array_equal(first.x, second.x)
            assert b_shard.metrics.counter("numeric_factorizations") == 0
            assert b_shard.cache.ledger["bytes_imported"] > 0
            assert a_shard.cache.check_conservation() == []
            assert b_shard.cache.check_conservation() == []

    def test_fleet_health_and_report_show_shared_tier(self, lap2d_small):
        fleet = ShardedSolverService(n_nodes=2, tiering=tiny_tiering())
        with fleet:
            fleet.solve(lap2d_small, np.ones(lap2d_small.n_rows))
            h = fleet.health()
            assert h["shared_tier"]["name"] == "object"
            assert h["shared_tier"]["capacity_bytes"] == 16 << 20
            rep = fleet.report()
            assert rep["shared_tier"]["resident_bytes"] >= 0

    def test_untiered_fleet_has_no_shared_tier(self, lap2d_small):
        fleet = ShardedSolverService(n_nodes=2)
        with fleet:
            assert fleet.shared_tier is None
            assert "shared_tier" not in fleet.health()

    def test_invalid_peer_fetch_mode_rejected(self):
        with pytest.raises(ValueError, match="peer_fetch"):
            ShardedSolverService(n_nodes=2, peer_fetch="sometimes")


class TestPeerFetchDecision:
    """The fetch-over-interconnect vs refactorize-locally boundary."""

    def _fleet(self, peer_fetch, *, latency=1e-3, bandwidth=1e6):
        return ShardedSolverService(
            n_nodes=2,
            tiering=tiny_tiering(),
            peer_fetch=peer_fetch,
            interconnect=InterconnectParams(
                latency=latency, bandwidth=bandwidth
            ),
        )

    def _plant(self, fleet, a, makespan):
        """Put a fake factor for ``a`` in exactly one shard's RAM and
        return (holder, other, num_key)."""
        target = fleet.primary_for(a)
        other = 1 - target
        _, num_key = fleet.shards[other].keys_for(a)
        fleet.shards[other].cache.put_numeric(
            num_key, FakeFactor("planted", makespan=makespan), nbytes=1000
        )
        return other, target, num_key

    def test_fetch_wins_when_transfer_beats_refactorize(self, lap2d_small):
        # fetch cost: 1e-3 + 1000/1e6 = 2e-3 s < makespan 0.1 s
        fleet = self._fleet("cost-model")
        with fleet:
            holder, target, num_key = self._plant(fleet, lap2d_small, 0.1)
            fleet._maybe_peer_fetch(target, lap2d_small)
            assert fleet.shards[target].cache.has_numeric(num_key)
            counters = fleet.metrics.report()["counters"]
            assert counters["peer_fetches"] == 1
            assert counters["peer_fetch_bytes"] == 1000
            assert "peer_fetch_declined" not in counters

    def test_refactorize_wins_when_transfer_is_dearer(self, lap2d_small):
        # fetch cost 2e-3 s >= makespan 1e-4 s: decline
        fleet = self._fleet("cost-model")
        with fleet:
            holder, target, num_key = self._plant(fleet, lap2d_small, 1e-4)
            fleet._maybe_peer_fetch(target, lap2d_small)
            assert not fleet.shards[target].cache.has_numeric(num_key)
            counters = fleet.metrics.report()["counters"]
            assert counters["peer_fetch_declined"] == 1
            assert "peer_fetches" not in counters

    def test_always_mode_ignores_the_cost_model(self, lap2d_small):
        fleet = self._fleet("always")
        with fleet:
            holder, target, num_key = self._plant(fleet, lap2d_small, 1e-9)
            fleet._maybe_peer_fetch(target, lap2d_small)
            assert fleet.shards[target].cache.has_numeric(num_key)

    def test_off_mode_never_probes(self, lap2d_small):
        fleet = self._fleet("off")
        with fleet:
            holder, target, num_key = self._plant(fleet, lap2d_small, 10.0)
            fleet._maybe_peer_fetch(target, lap2d_small)
            assert not fleet.shards[target].cache.has_numeric(num_key)
            assert fleet.metrics.report()["counters"] == {}

    def test_local_hit_skips_the_probe(self, lap2d_small):
        fleet = self._fleet("always")
        with fleet:
            holder, target, num_key = self._plant(fleet, lap2d_small, 10.0)
            fleet.shards[target].cache.put_numeric(
                num_key, FakeFactor("local"), nbytes=500
            )
            fleet._maybe_peer_fetch(target, lap2d_small)
            assert fleet.metrics.report()["counters"] == {}
            # the local copy was not clobbered by a peer import
            assert (
                fleet.shards[target].cache.peek_numeric(num_key).tag
                == "local"
            )

    def test_end_to_end_fetch_through_solve(self, lap2d_small):
        # a real factor resident only on the non-primary shard is pulled
        # over the interconnect by the primary inside fleet.solve()
        b = np.ones(lap2d_small.n_rows)
        fleet = ShardedSolverService(n_nodes=2, tiering=tiny_tiering())
        with fleet:
            target = fleet.primary_for(lap2d_small)
            other = 1 - target
            first = fleet.shards[other].solve(lap2d_small, b)
            _, num_key = fleet.shards[other].keys_for(lap2d_small)
            assert fleet.shards[other].cache.has_numeric(num_key)
            out = fleet.solve(lap2d_small, b)
            counters = fleet.metrics.report()["counters"]
            assert counters.get("peer_fetches", 0) == 1
            assert out.tier == "numeric"  # no refactorization on target
            np.testing.assert_array_equal(first.x, out.x)
            assert (
                fleet.shards[target].metrics.counter(
                    "numeric_factorizations"
                ) == 0
            )


# ----------------------------------------------------------------------
# verify invariant
# ----------------------------------------------------------------------
class TestTierCoherenceInvariant:
    def test_invariant_holds_on_suite_fixture(self, lap2d_small):
        from repro.verify import check_tier_coherence

        assert check_tier_coherence(lap2d_small) == []
