"""Cross-validation against SciPy (an independent reference).

The core library is numpy-only by design; these tests use scipy purely
as an *oracle* — its sparse Cholesky-backed solves, its orderings'
quality, its matrix conversions — to check ours from a codebase we
didn't write.
"""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")
from scipy.sparse.csgraph import reverse_cuthill_mckee as scipy_rcm
from scipy.sparse.linalg import spsolve

from repro import SparseCholeskySolver, elasticity_3d, grid_laplacian_3d, random_spd
from repro.matrices import grid_laplacian_2d
from repro.ordering import reverse_cuthill_mckee


def to_scipy(a):
    return scipy_sparse.csc_matrix(
        (a.data, a.indices, a.indptr), shape=a.shape
    )


class TestSolveAgainstScipy:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: grid_laplacian_2d(9, 9),
            lambda: grid_laplacian_3d(6, 6, 6),
            lambda: elasticity_3d(4, 4, 4),
            lambda: random_spd(150, seed=3),
        ],
        ids=["lap2d", "lap3d", "elasticity", "random"],
    )
    def test_solution_matches_spsolve(self, builder):
        a = builder()
        rng = np.random.default_rng(0)
        b = rng.normal(size=a.n_rows)
        ours = SparseCholeskySolver(a, ordering="nd", policy="P1").solve(b)
        ref = spsolve(to_scipy(a), b)
        assert np.abs(ours - ref).max() / (np.abs(ref).max() + 1) < 1e-9

    def test_gpu_policy_plus_refinement_matches_spsolve(self):
        a = grid_laplacian_3d(6, 6, 6)
        b = np.ones(a.n_rows)
        ours = SparseCholeskySolver(a, ordering="nd", policy="P3").solve(b)
        ref = spsolve(to_scipy(a), b)
        assert np.abs(ours - ref).max() < 1e-8

    def test_matvec_matches_scipy(self):
        a = random_spd(200, seed=8)
        x = np.random.default_rng(1).normal(size=200)
        assert np.allclose(a.matvec(x), to_scipy(a) @ x)

    def test_logdet_matches_scipy_lu(self):
        from scipy.sparse.linalg import splu

        a = random_spd(100, seed=4)
        s = SparseCholeskySolver(a, policy="P1").factorize()
        lu = splu(to_scipy(a).tocsc())
        ref = np.log(np.abs(lu.U.diagonal())).sum() + np.log(
            np.abs(lu.L.diagonal())
        ).sum()
        assert s.log_determinant() == pytest.approx(ref, rel=1e-8)


class TestOrderingAgainstScipy:
    def test_rcm_bandwidth_comparable_to_scipy(self):
        a = random_spd(300, seed=5)
        sp = to_scipy(a)

        def bandwidth(perm):
            p = a.permute_symmetric(np.asarray(perm, dtype=np.int64))
            col = np.repeat(
                np.arange(p.n_cols, dtype=np.int64), np.diff(p.indptr)
            )
            return int(np.abs(p.indices - col).max())

        ours = bandwidth(reverse_cuthill_mckee(a))
        theirs = bandwidth(scipy_rcm(sp.tocsr()))
        # same algorithm family: within 40% of scipy's bandwidth
        assert ours <= theirs * 1.4
