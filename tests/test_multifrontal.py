"""Multifrontal numeric phase: assembly, factorization, solve, refinement."""

import numpy as np
import pytest

from repro.matrices import grid_laplacian_2d, grid_laplacian_3d, random_spd
from repro.matrices.csc import csc_from_dense
from repro.multifrontal import (
    SparseCholeskySolver,
    factorize_numeric,
    iterative_refinement,
    solve_factored,
)
from repro.multifrontal.frontal import assemble_front, assembly_bytes, extend_add
from repro.multifrontal.solve import trsv_lower, trsv_lower_t
from repro.gpu import SimulatedNode
from repro.policies import make_policy
from repro.symbolic import symbolic_factorize


class TestExtendAdd:
    def test_scatter_add(self):
        front = np.zeros((4, 4))
        parent_rows = np.array([2, 5, 7, 9])
        child_rows = np.array([5, 9])
        u = np.array([[1.0, 2.0], [2.0, 3.0]])
        extend_add(front, parent_rows, child_rows, u)
        assert front[1, 1] == 1.0
        assert front[1, 3] == 2.0
        assert front[3, 3] == 3.0

    def test_rejects_uncontained_rows(self):
        with pytest.raises(ValueError):
            extend_add(
                np.zeros((2, 2)),
                np.array([1, 3]),
                np.array([2]),
                np.array([[1.0]]),
            )

    def test_empty_child_noop(self):
        front = np.zeros((2, 2))
        extend_add(front, np.array([0, 1]), np.array([], dtype=np.int64), np.zeros((0, 0)))
        assert (front == 0).all()

    def test_assembly_bytes_positive(self):
        assert assembly_bytes(10, [4, 6]) > assembly_bytes(10, [])


class TestAssembleFront:
    def test_leaf_front_matches_matrix(self):
        a = grid_laplacian_2d(4, 4)
        sf = symbolic_factorize(a, ordering="natural")
        ap = a.permute_symmetric(sf.perm).lower_triangle()
        # leaf supernodes have no children
        kids = sf.schildren()
        leaf = next(s for s in range(sf.n_supernodes) if not kids[s])
        front = assemble_front(ap, sf, leaf, [])
        # symmetric and contains the A entries of its columns
        assert np.allclose(front, front.T)
        f = int(sf.super_ptr[leaf])
        dense = a.permute_symmetric(sf.perm).to_dense()
        rows = sf.rows[leaf]
        k = sf.width(leaf)
        assert np.allclose(front[:, :k], dense[np.ix_(rows, np.arange(f, f + k))])


def solve_and_check(a, policy_name, ordering="amd", node=None, atol=1e-6):
    sf = symbolic_factorize(a, ordering=ordering)
    pol = make_policy(policy_name)
    nf = factorize_numeric(a, sf, pol, node=node)
    rng = np.random.default_rng(1)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)
    x = solve_factored(nf, b)
    return nf, np.abs(x - x_true).max() / np.abs(x_true).max()


class TestFactorizeNumeric:
    @pytest.mark.parametrize("ordering", ["natural", "amd", "rcm", "nd"])
    def test_p1_exact_under_all_orderings(self, ordering, lap2d_small):
        nf, err = solve_and_check(lap2d_small, "P1", ordering)
        assert err < 1e-10
        assert nf.residual_norm(lap2d_small) < 1e-12

    @pytest.mark.parametrize("policy", ["P2", "P3", "P4"])
    def test_gpu_policies_fp32_accuracy(self, policy, lap2d_small):
        nf, err = solve_and_check(lap2d_small, policy)
        assert err < 1e-3          # single precision ballpark
        assert nf.residual_norm(lap2d_small) < 1e-4

    def test_random_spd(self, rand_spd_small):
        nf, err = solve_and_check(rand_spd_small, "P1")
        assert err < 1e-9

    def test_3d_problem(self, lap3d_small):
        nf, err = solve_and_check(lap3d_small, "P1", "nd")
        assert err < 1e-9

    def test_records_cover_all_supernodes(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        assert len(nf.records) == sf.n_supernodes
        assert {r.sid for r in nf.records} == set(range(sf.n_supernodes))
        assert all(r.end >= r.start >= 0 for r in nf.records)

    def test_makespan_increases_with_records(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        assert nf.makespan >= max(r.end for r in nf.records)
        assert nf.makespan > 0

    def test_peak_update_memory_tracked(self, lap3d_small):
        sf = symbolic_factorize(lap3d_small, ordering="nd")
        nf = factorize_numeric(lap3d_small, sf, make_policy("P1"))
        assert nf.peak_update_bytes > 0

    def test_l_matrix_lower_triangular(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        l = nf.l_matrix()
        dense = l.to_dense()
        assert np.allclose(np.triu(dense, 1), 0.0)
        perm_a = lap2d_small.permute_symmetric(sf.perm).to_dense()
        assert np.allclose(dense @ dense.T, perm_a, atol=1e-10)


class TestTriangularSolves:
    def test_trsv_forward(self, rng):
        l = np.tril(rng.normal(size=(50, 50))) + 50 * np.eye(50)
        b = rng.normal(size=50)
        assert np.allclose(l @ trsv_lower(l, b), b)

    def test_trsv_backward(self, rng):
        l = np.tril(rng.normal(size=(50, 50))) + 50 * np.eye(50)
        b = rng.normal(size=50)
        assert np.allclose(l.T @ trsv_lower_t(l, b), b)

    def test_trsv_blocked_vs_small_block(self, rng):
        l = np.tril(rng.normal(size=(40, 40))) + 40 * np.eye(40)
        b = rng.normal(size=40)
        assert np.allclose(trsv_lower(l, b, block=4), trsv_lower(l, b, block=64))

    def test_solve_rejects_bad_shape(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        with pytest.raises(ValueError):
            solve_factored(nf, np.ones(3))


class TestRefinement:
    def test_recovers_double_precision_after_fp32_factor(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P3"))
        rng = np.random.default_rng(2)
        x_true = rng.normal(size=lap2d_small.n_rows)
        b = lap2d_small.matvec(x_true)
        res = iterative_refinement(lap2d_small, nf, b, tol=1e-12)
        assert res.final_residual < 1e-11
        assert res.final_residual < res.initial_residual
        # the paper: "one or two steps of iterative refinement"
        assert res.iterations <= 3

    def test_exact_factor_needs_no_iterations(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P1"))
        b = np.ones(lap2d_small.n_rows)
        res = iterative_refinement(lap2d_small, nf, b, tol=1e-12)
        assert res.iterations == 0
        assert res.converged

    def test_max_iter_respected(self, lap2d_small):
        sf = symbolic_factorize(lap2d_small, ordering="amd")
        nf = factorize_numeric(lap2d_small, sf, make_policy("P3"))
        res = iterative_refinement(
            lap2d_small, nf, np.ones(lap2d_small.n_rows), tol=0.0, max_iter=2
        )
        assert res.iterations <= 2


class TestSolverAPI:
    def test_full_pipeline(self, lap3d_small):
        s = SparseCholeskySolver(lap3d_small, ordering="nd", policy="baseline")
        s.analyze().factorize()
        b = np.ones(lap3d_small.n_rows)
        x = s.solve(b)
        assert np.abs(lap3d_small.matvec(x) - b).max() < 1e-9
        st = s.stats
        assert st.simulated_seconds > 0
        assert st.total_flops > 0
        assert st.n == lap3d_small.n_rows
        assert sum(st.policy_counts.values()) == st.n_supernodes

    def test_lazy_analyze_and_factorize(self, lap2d_small):
        s = SparseCholeskySolver(lap2d_small, policy="P1")
        x = s.solve(np.ones(lap2d_small.n_rows))  # triggers both phases
        assert s.symbolic is not None and s.factor is not None

    def test_lower_triangle_input_accepted(self, lap2d_small):
        low = lap2d_small.lower_triangle()
        s = SparseCholeskySolver(low, policy="P1")
        x = s.solve(np.ones(lap2d_small.n_rows))
        assert np.abs(lap2d_small.matvec(x) - 1).max() < 1e-9

    def test_policy_instance_accepted(self, lap2d_small):
        from repro.policies import BaselineHybrid

        s = SparseCholeskySolver(lap2d_small, policy=BaselineHybrid())
        s.factorize()
        assert s.stats.n_supernodes > 0

    def test_stats_before_factorize_raises(self, lap2d_small):
        s = SparseCholeskySolver(lap2d_small)
        with pytest.raises(RuntimeError):
            _ = s.stats

    def test_unknown_policy_rejected(self, lap2d_small):
        with pytest.raises(ValueError):
            SparseCholeskySolver(lap2d_small, policy="fastest")

    def test_rejects_nonsquare(self, rng):
        a = csc_from_dense(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            SparseCholeskySolver(a)

    def test_refinement_off(self, lap2d_small):
        s = SparseCholeskySolver(lap2d_small, policy="P3")
        b = np.ones(lap2d_small.n_rows)
        raw = s.solve(b, refine=False)
        refined = s.solve(b, refine=True)
        resid_raw = np.abs(lap2d_small.matvec(raw) - b).max()
        resid_ref = np.abs(lap2d_small.matvec(refined) - b).max()
        assert resid_ref < resid_raw

    def test_effective_gflops(self, lap2d_small):
        s = SparseCholeskySolver(lap2d_small, policy="P1").factorize()
        assert s.stats.effective_gflops > 0
