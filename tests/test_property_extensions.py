"""Property-based tests for the scheduling, workload, cluster and stack
subsystems (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, map_subtrees_to_ranks, simulate_cluster
from repro.gpu import tesla_t10_model
from repro.gpu.clock import TaskGraph, schedule_graph
from repro.policies import Worker, estimate_policy_time, make_policy
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.stack import (
    estimate_peak_update_bytes,
    stack_minimizing_postorder,
    update_bytes,
)
from repro.workload import geometric_nd_workload

MODEL = tesla_t10_model()


@st.composite
def grid_dims(draw, lo=1, hi=14):
    return (
        draw(st.integers(lo, hi)),
        draw(st.integers(lo, hi)),
        draw(st.integers(lo, hi)),
    )


class TestWorkloadProperties:
    @given(grid_dims(), st.integers(1, 3), st.sampled_from([4, 16, 64]))
    def test_structure_consistency(self, dims, dof, leaf):
        sf = geometric_nd_workload(*dims, dof=dof, leaf_cells=leaf)
        # column count conservation
        assert sf.n == dims[0] * dims[1] * dims[2] * dof
        # supernodes partition the columns
        assert sf.super_ptr[0] == 0 and sf.super_ptr[-1] == sf.n
        assert (np.diff(sf.super_ptr) > 0).all()
        # tree: children have smaller column ranges than parents
        for s in range(sf.n_supernodes):
            p = sf.sparent[s]
            if p != NO_PARENT:
                assert sf.super_ptr[p] >= sf.super_ptr[s + 1]
        # roots carry no update rows
        for s in range(sf.n_supernodes):
            if sf.sparent[s] == NO_PARENT:
                assert sf.update_size(s) == 0

    @given(grid_dims(2, 10))
    def test_etree_postorder_roundtrip(self, dims):
        sf = geometric_nd_workload(*dims, leaf_cells=8)
        # the fabricated column etree must be a forest whose postorder
        # visits every column once
        assert np.array_equal(np.sort(sf.etree.post), np.arange(sf.n))


class TestStackProperties:
    @given(grid_dims(2, 10))
    def test_liu_order_never_worse(self, dims):
        sf = geometric_nd_workload(*dims, leaf_cells=8)
        default = estimate_peak_update_bytes(sf)
        optimized = estimate_peak_update_bytes(
            sf, stack_minimizing_postorder(sf)
        )
        assert optimized <= default

    @given(grid_dims(2, 10))
    def test_peak_at_least_largest_update(self, dims):
        sf = geometric_nd_workload(*dims, leaf_cells=8)
        biggest = max(update_bytes(sf, s) for s in range(sf.n_supernodes))
        assert estimate_peak_update_bytes(sf) >= biggest


class TestClusterProperties:
    @given(grid_dims(3, 9), st.integers(1, 6))
    def test_mapping_total_and_range(self, dims, n_ranks):
        sf = geometric_nd_workload(*dims, leaf_cells=8)
        owner = map_subtrees_to_ranks(sf, n_ranks)
        assert owner.shape == (sf.n_supernodes,)
        assert owner.min() >= 0 and owner.max() < n_ranks

    @given(st.integers(1, 4))
    def test_more_ranks_never_slower(self, doubling):
        sf = geometric_nd_workload(10, 10, 10, leaf_cells=8)
        pol = make_policy("P1")
        t1 = simulate_cluster(sf, pol, ClusterSpec(1, 0, model=MODEL)).makespan
        tn = simulate_cluster(
            sf, pol, ClusterSpec(2**doubling, 0, model=MODEL)
        ).makespan
        # communication can eat gains but never below ~the serial bound
        assert tn <= t1 * 1.05

    @given(grid_dims(3, 8))
    def test_comm_conservation(self, dims):
        sf = geometric_nd_workload(*dims, leaf_cells=8)
        res = simulate_cluster(
            sf, make_policy("P1"), ClusterSpec(3, 0, model=MODEL)
        )
        # bytes and messages agree with the owner map
        owner = res.owner
        expect_msgs = sum(
            1
            for s in range(sf.n_supernodes)
            if sf.sparent[s] != NO_PARENT
            and owner[sf.sparent[s]] != owner[s]
            and sf.update_size(s) > 0
        )
        assert res.comm_messages == expect_msgs


class TestPolicyEstimateProperties:
    @given(st.integers(0, 3000), st.integers(1, 2000))
    def test_estimates_positive_and_finite(self, m, k):
        for name in ("P1", "P2", "P3", "P4"):
            t = estimate_policy_time(make_policy(name), m, k, MODEL)
            assert np.isfinite(t) and t > 0

    @given(st.integers(1, 1500), st.integers(1, 800))
    def test_p1_monotone_in_each_dimension(self, m, k):
        p1 = make_policy("P1")
        t = estimate_policy_time(p1, m, k, MODEL)
        assert estimate_policy_time(p1, m + 100, k, MODEL) >= t
        assert estimate_policy_time(p1, m, k + 100, MODEL) >= t

    @given(st.integers(16, 1024))
    def test_root_call_p4_beats_p3_for_large_k(self, k):
        # at m = 0 policies P2/P3 degenerate to host potrf, so for large
        # k the on-device blocked potrf (P4) must win
        if k < 600:
            return
        t3 = estimate_policy_time(make_policy("P3"), 0, k, MODEL)
        t4 = estimate_policy_time(make_policy("P4"), 0, k, MODEL)
        assert t4 < t3


class TestScheduleGraphProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b"]), st.floats(0, 2)),
            min_size=1, max_size=15,
        )
    )
    def test_makespan_bounds(self, spec):
        g = TaskGraph()
        prev = None
        for i, (eng, dur) in enumerate(spec):
            deps = (prev,) if (prev is not None and i % 3 == 0) else ()
            prev = g.add(f"t{i}", eng, dur, deps)
        res = schedule_graph(g)
        total = sum(d for _, d in spec)
        longest = max((d for _, d in spec), default=0.0)
        assert longest - 1e-12 <= res.makespan <= total + 1e-12
