"""Device-resident factorization (the §VI-C copy-optimization mechanism)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.gpu import SimulatedNode, tesla_t10_model
from repro.gpu.device import SimulatedGpu
from repro.gpu.spec import TESLA_T10
from repro.matrices import grid_laplacian_3d
from repro.multifrontal import (
    factorize_numeric,
    factorize_resident,
    flops_placement,
    iterative_refinement,
    solve_factored,
)
from repro.policies import make_policy
from repro.symbolic import symbolic_factorize


@pytest.fixture(scope="module")
def problem():
    a = grid_laplacian_3d(8, 8, 8)
    return a, symbolic_factorize(a, ordering="nd")


AGGRESSIVE = flops_placement(1e4)   # small problem: offload almost everything


class TestNumerics:
    def test_solution_correct_with_refinement(self, problem):
        a, sf = problem
        nf, stats = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        assert stats.n_device_supernodes > 0
        rng = np.random.default_rng(0)
        x_true = rng.normal(size=a.n_rows)
        res = iterative_refinement(a, nf, a.matvec(x_true))
        assert np.abs(res.x - x_true).max() < 1e-9
        assert res.iterations <= 3

    def test_fp32_error_compounds_across_resident_generations(self, problem):
        a, sf = problem
        nf, _ = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        resid = nf.residual_norm(a)
        assert 1e-12 < resid < 1e-3   # fp32-limited, not garbage

    def test_all_host_placement_is_exact(self, problem):
        a, sf = problem
        nf, stats = factorize_resident(
            a, sf, place_on_device=lambda m, k: False
        )
        assert stats.n_device_supernodes == 0
        assert nf.residual_norm(a) < 1e-12

    def test_matches_p1_solution(self, problem):
        a, sf = problem
        nf_res, _ = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        nf_p1 = factorize_numeric(a, sf, make_policy("P1"))
        b = np.ones(a.n_rows)
        x1 = solve_factored(nf_p1, b)
        x2 = solve_factored(nf_res, b)
        assert np.abs(x1 - x2).max() < 1e-3


class TestResidency:
    def test_resident_reuse_happens(self, problem):
        a, sf = problem
        nf, stats = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        # chains of device supernodes pass updates without PCIe traffic
        assert stats.resident_reuse_bytes > 0
        assert stats.peak_resident_bytes > 0

    def test_resident_transfers_less_than_plain_p4(self, problem):
        a, sf = problem
        nf_res, stats = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        # plain P4 round-trips the full front both ways every call
        word = 4
        p4_traffic = sum(
            (r.m + r.k) ** 2 * word * 2 for r in nf_res.records
        )
        assert stats.h2d_bytes + stats.d2h_bytes < p4_traffic

    def test_faster_than_plain_p4_everywhere(self, problem):
        a, sf = problem
        nf_res, _ = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        nf_p4 = factorize_numeric(
            a, sf, make_policy("P4"), node=SimulatedNode()
        )
        assert nf_res.makespan < nf_p4.makespan

    def test_spilling_under_tiny_device_memory(self, problem):
        a, sf = problem
        model = tesla_t10_model()
        node = SimulatedNode(model=model)
        small = replace(TESLA_T10, memory_bytes=8 * 1024)
        node.gpus[0] = SimulatedGpu(model, 0, spec=small)
        nf, stats = factorize_resident(
            a, sf, node=node, place_on_device=AGGRESSIVE
        )
        assert stats.n_spills > 0
        assert stats.peak_resident_bytes <= 8 * 1024 * 4  # bounded-ish
        # numerics survive spilling
        res = iterative_refinement(a, nf, np.ones(a.n_rows))
        assert res.final_residual < 1e-10

    def test_requires_gpu(self, problem):
        a, sf = problem
        with pytest.raises(ValueError):
            factorize_resident(
                a, sf, node=SimulatedNode(n_cpus=1, n_gpus=0)
            )

    def test_records_tag_policies(self, problem):
        a, sf = problem
        nf, stats = factorize_resident(a, sf, place_on_device=AGGRESSIVE)
        tags = {r.policy for r in nf.records}
        assert tags <= {"P4r", "P1"}
        assert "P4r" in tags

    def test_default_placement_threshold(self):
        choose = flops_placement(2e6)
        assert not choose(10, 10)
        assert choose(5000, 1000)
