"""The benchmarking harness: schema, gate logic, runner, CLI, lint scope.

Covers the ISSUE-5 matrix for :mod:`repro.bench`:

* result schema round-trips and byte-stable serialization;
* the baseline decision procedure (exact counters, MAD-scaled wall);
* the runner's repeat-determinism enforcement and profiling hook;
* CLI exit codes, including an injected counter regression;
* two independent runs of a real scenario producing bit-identical
  counters (the property the committed baselines rely on);
* the planned assembly path being bitwise-identical to the legacy
  per-column path (the PR's profiler-guided optimization);
* the lint determinism scope covering ``repro.bench``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    BenchDeterminismError,
    BenchResult,
    Measurement,
    RunOptions,
    Scenario,
    WallStats,
    compare_results,
    profile_call,
    result_filename,
    run_scenario,
)
from repro.bench.results import SCHEMA_VERSION, load_results_dir
from repro.bench.workloads import SuiteCache
from repro.cli import main

REPO = Path(__file__).resolve().parents[1]


def make_result(scenario="toy", *, det=None, numeric=None, median=0.1,
                mad=0.01) -> BenchResult:
    return BenchResult(
        scenario=scenario,
        description="synthetic",
        repeats=3,
        deterministic=det if det is not None else {"flops": 100.0, "calls": 7},
        numeric=numeric if numeric is not None else {"residual": 1e-14},
        wall=WallStats(
            samples=(median, median + mad, median - mad),
            median_seconds=median,
            mad_seconds=mad,
        ),
        tags=("synthetic",),
    )


# ----------------------------------------------------------------------
# results schema
# ----------------------------------------------------------------------
class TestResults:
    def test_wallstats_from_samples(self):
        ws = WallStats.from_samples([0.3, 0.1, 0.2])
        assert ws.median_seconds == pytest.approx(0.2)
        assert ws.mad_seconds == pytest.approx(0.1)
        assert ws.samples == (0.3, 0.1, 0.2)

    def test_roundtrip(self):
        r = make_result()
        back = BenchResult.from_dict(json.loads(r.to_json()))
        assert back == r

    def test_json_is_byte_stable_and_sorted(self):
        r = make_result()
        s1, s2 = r.to_json(), r.to_json()
        assert s1 == s2
        assert s1.endswith("\n")
        d = json.loads(s1)
        assert list(d["deterministic"]) == sorted(d["deterministic"])

    def test_write_and_load(self, tmp_path):
        r = make_result()
        path = r.write(tmp_path)
        assert path.name == result_filename("toy") == "BENCH_toy.json"
        assert BenchResult.load(path) == r
        loaded = load_results_dir(tmp_path)
        assert set(loaded) == {"toy"}
        assert loaded["toy"] == r

    def test_schema_version_rejected(self):
        d = json.loads(make_result().to_json())
        d["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            BenchResult.from_dict(d)


# ----------------------------------------------------------------------
# comparison / gate logic
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_passes(self):
        base, new = make_result(), make_result()
        rep = compare_results({"toy": new}, {"toy": base})
        assert rep.ok
        assert "all gates passed" in rep.format()

    def test_counter_change_fails(self):
        base = make_result(det={"flops": 100.0})
        new = make_result(det={"flops": 101.0})
        rep = compare_results({"toy": new}, {"toy": base})
        assert not rep.ok
        assert "flops" in rep.format()

    def test_added_and_removed_counters_fail(self):
        base = make_result(det={"a": 1})
        new = make_result(det={"b": 1})
        rep = compare_results({"toy": new}, {"toy": base})
        [v] = rep.verdicts
        assert len(v.counter_diffs) == 2

    def test_bool_int_distinction(self):
        # True == 1 in Python; the gate must still catch the type drift
        base = make_result(det={"ok": True})
        new = make_result(det={"ok": 1})
        assert not compare_results({"toy": new}, {"toy": base}).ok

    def test_wall_within_tolerance_passes(self):
        base = make_result(median=0.100, mad=0.010)
        new = make_result(median=0.140, mad=0.001)   # +40ms < 5*MAD=50ms
        assert compare_results({"toy": new}, {"toy": base}).ok

    def test_wall_beyond_tolerance_fails(self):
        base = make_result(median=0.100, mad=0.002)
        # tolerance = max(5*0.002, 0.25*0.1) = 0.025; +60ms regresses
        new = make_result(median=0.160, mad=0.002)
        rep = compare_results({"toy": new}, {"toy": base})
        assert not rep.ok
        assert "wall-clock regression" in rep.format()

    def test_rel_floor_shields_quiet_baselines(self):
        base = make_result(median=0.100, mad=0.0)     # zero measured noise
        new = make_result(median=0.120, mad=0.0)      # +20% < 25% floor
        assert compare_results({"toy": new}, {"toy": base}).ok

    def test_check_wall_off_ignores_regression(self):
        base = make_result(median=0.1, mad=0.001)
        new = make_result(median=9.9, mad=0.001)
        assert compare_results({"toy": new}, {"toy": base},
                               check_wall=False).ok

    def test_numeric_gated_only_on_request(self):
        base = make_result(numeric={"residual": 1e-14})
        new = make_result(numeric={"residual": 2e-14})
        assert compare_results({"toy": new}, {"toy": base}).ok
        assert not compare_results({"toy": new}, {"toy": base},
                                   check_numeric=True).ok

    def test_missing_baseline_is_informational(self):
        rep = compare_results({"toy": make_result()}, {})
        assert rep.ok
        assert "NEW" in rep.format()

    def test_missing_result_fails(self):
        rep = compare_results({}, {"toy": make_result()})
        assert not rep.ok
        assert "GONE" in rep.format()


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def toy_scenario(name="toy", counter_source=None) -> Scenario:
    def run(suite):
        det = counter_source() if counter_source else {"value": 42}
        return Measurement(dict(det), {"res": 0.5})

    return Scenario(
        name=name, description="synthetic toy scenario",
        run=run, prepare=lambda suite: None, tags=("synthetic",),
    )


@pytest.fixture
def toy_suite():
    # never populated: the toy scenarios don't touch the cache
    return SuiteCache()


class TestRunner:
    def test_run_scenario_shapes_result(self, toy_suite):
        r = run_scenario(toy_scenario(), toy_suite, RunOptions(repeats=4))
        assert r.scenario == "toy"
        assert r.repeats == 4
        assert len(r.wall.samples) == 4
        assert r.deterministic == {"value": 42}
        assert r.numeric == {"res": 0.5}
        assert r.profile is None

    def test_nondeterministic_counter_detected(self, toy_suite):
        state = {"n": 0}

        def drifting():
            state["n"] += 1
            return {"value": state["n"]}

        with pytest.raises(BenchDeterminismError, match="not deterministic"):
            run_scenario(toy_scenario(counter_source=drifting), toy_suite,
                         RunOptions(repeats=2))

    def test_type_drift_detected(self, toy_suite):
        vals = iter([{"ok": True}, {"ok": 1}, {"ok": True}])
        with pytest.raises(BenchDeterminismError):
            run_scenario(toy_scenario(counter_source=lambda: next(vals)),
                         toy_suite, RunOptions(repeats=2))

    def test_profile_attached(self, toy_suite):
        r = run_scenario(toy_scenario(), toy_suite,
                         RunOptions(repeats=1, profile=True, profile_top=5))
        assert r.profile is not None
        assert len(r.profile) <= 5
        assert all({"function", "ncalls", "tottime", "cumtime"} <= set(row)
                   for row in r.profile)

    def test_profile_call_names_hot_function(self):
        def hot():
            return sum(i * i for i in range(50_000))

        rows = profile_call(hot, top=10)
        assert any("hot" in row["function"] for row in rows)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture
def with_toy_registry(monkeypatch):
    from repro.bench import scenarios as registry

    monkeypatch.setitem(registry._REGISTRY, "toy", toy_scenario())
    return registry


class TestCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "factorize-serial-p1" in out
        assert "service-throughput" in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["bench", "--scenarios", "no-such-scenario"]) == 2

    def test_check_requires_baseline(self):
        assert main(["bench", "--check", "--scenarios", "toy"]) == 2

    def test_missing_baseline_dir(self, tmp_path):
        assert main(["bench", "--check",
                     "--baseline", str(tmp_path / "nope")]) == 2

    def test_empty_baseline_dir(self, tmp_path):
        assert main(["bench", "--check", "--baseline", str(tmp_path)]) == 2

    def test_run_writes_results(self, with_toy_registry, tmp_path, capsys):
        rc = main(["bench", "--scenarios", "toy", "--repeats", "2",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        path = tmp_path / "BENCH_toy.json"
        assert path.exists()
        r = BenchResult.load(path)
        assert r.deterministic == {"value": 42}
        assert r.repeats == 2

    def test_check_clean_then_injected_regression(self, with_toy_registry,
                                                  tmp_path, capsys):
        assert main(["bench", "--scenarios", "toy", "--repeats", "2",
                     "--out-dir", str(tmp_path)]) == 0
        # clean self-check passes (wall gated too: same machine, same toy)
        assert main(["bench", "--scenarios", "toy", "--repeats", "2",
                     "--check", "--baseline", str(tmp_path)]) == 0
        # inject a deterministic-counter regression into the baseline
        path = tmp_path / "BENCH_toy.json"
        d = json.loads(path.read_text())
        d["deterministic"]["value"] = 41
        path.write_text(json.dumps(d))
        assert main(["bench", "--scenarios", "toy", "--repeats", "2",
                     "--check", "--baseline", str(tmp_path),
                     "--skip-wall"]) == 1
        err_out = capsys.readouterr().out
        assert "counter regression" in err_out

    def test_check_subset_ignores_unrun_baselines(self, with_toy_registry,
                                                  tmp_path, capsys):
        make_result("other").write(tmp_path)
        assert main(["bench", "--scenarios", "toy", "--repeats", "2",
                     "--out-dir", str(tmp_path)]) == 0
        assert main(["bench", "--scenarios", "toy", "--repeats", "2",
                     "--check", "--baseline", str(tmp_path),
                     "--skip-wall"]) == 0

    def test_determinism_failure_exits_one(self, monkeypatch):
        from repro.bench import scenarios as registry

        state = {"n": 0}

        def drifting():
            state["n"] += 1
            return {"value": state["n"]}

        monkeypatch.setitem(
            registry._REGISTRY, "toy", toy_scenario(counter_source=drifting)
        )
        assert main(["bench", "--scenarios", "toy", "--repeats", "2"]) == 1


# ----------------------------------------------------------------------
# two independent runs of a real scenario are bit-identical
# ----------------------------------------------------------------------
def test_real_scenario_bit_stable_across_runs():
    from repro.bench.scenarios import get_scenarios

    [scn] = get_scenarios(["service-throughput"])
    r1 = run_scenario(scn, SuiteCache(), RunOptions(repeats=2))
    r2 = run_scenario(scn, SuiteCache(), RunOptions(repeats=2))
    assert r1.deterministic == r2.deterministic
    assert r1.numeric == r2.numeric


# ----------------------------------------------------------------------
# the planned assembly path (this PR's hot-path optimization)
# ----------------------------------------------------------------------
def test_planned_assembly_bitwise_matches_legacy():
    """Every front assembled by the precomputed-scatter path must be
    bitwise identical to the per-column legacy path, including the
    extend-add of real (eliminated) child updates."""
    from repro.matrices import grid_laplacian_3d
    from repro.multifrontal.frontal import (
        assemble_front,
        get_assembly_plan,
    )
    from repro.multifrontal.frontal import assemble_front_planned
    from repro.symbolic import symbolic_factorize

    a = grid_laplacian_3d(6, 5, 4)
    sf = symbolic_factorize(a, ordering="nd")
    a_lower = a.permute_symmetric(sf.perm).lower_triangle()
    plan = get_assembly_plan(a_lower, sf)
    kids = sf.schildren()

    updates: dict[int, np.ndarray] = {}
    checked = 0
    for s in sf.spost:
        s = int(s)
        rows = sf.rows[s]
        k = sf.width(s)
        child_ids = [c for c in kids[s] if c in updates]
        legacy_children = [
            (sf.rows[c][sf.width(c):], updates[c]) for c in child_ids
        ]
        planned_children = [(c, updates.pop(c)) for c in child_ids]

        front_legacy = assemble_front(a_lower, sf, s, legacy_children)
        front_planned = assemble_front_planned(
            plan, a_lower.data, rows.size, s, planned_children
        )
        assert np.array_equal(front_legacy, front_planned), f"supernode {s}"
        checked += 1

        # eliminate (plain dense partial Cholesky) to produce genuine
        # child updates for the parents
        f11 = front_planned[:k, :k]
        l11 = np.linalg.cholesky(f11)
        if rows.size > k:
            l21 = np.linalg.solve(l11, front_planned[:k, k:]).T
            updates[s] = front_planned[k:, k:] - l21 @ l21.T
    assert checked == sf.n_supernodes
    assert not updates


def test_assembly_plan_cached_on_symbolic():
    from repro.matrices import grid_laplacian_2d
    from repro.multifrontal.frontal import get_assembly_plan
    from repro.symbolic import symbolic_factorize

    a = grid_laplacian_2d(7, 6)
    sf = symbolic_factorize(a, ordering="nd")
    a_lower = a.permute_symmetric(sf.perm).lower_triangle()
    p1 = get_assembly_plan(a_lower, sf)
    p2 = get_assembly_plan(a_lower, sf)
    assert p1 is p2


def test_assembly_plan_rejects_out_of_pattern_entries():
    from repro.matrices import grid_laplacian_2d
    from repro.matrices.csc import CSCMatrix
    from repro.multifrontal.frontal import build_assembly_plan
    from repro.symbolic import symbolic_factorize

    a = grid_laplacian_2d(6, 6)
    sf = symbolic_factorize(a, ordering="nd")
    a_lower = a.permute_symmetric(sf.perm).lower_triangle()
    build_assembly_plan(a_lower, sf)  # in-pattern: fine

    # move one entry of some early column to a row outside that
    # supernode's symbolic row set — the plan must refuse at build time
    # with the same error the per-column path raises
    indices = a_lower.indices.copy()
    n = a_lower.n_rows
    for s in range(sf.n_supernodes):
        rowset = set(int(r) for r in sf.rows[s])
        outside = [r for r in range(n - 1, -1, -1) if r not in rowset]
        if not outside:
            continue
        j = int(sf.super_ptr[s])
        lo, hi = int(a_lower.indptr[j]), int(a_lower.indptr[j + 1])
        if hi - lo == 0 or outside[0] <= int(indices[hi - 1]):
            continue
        indices[hi - 1] = outside[0]  # still sorted: strictly larger
        break
    else:
        pytest.skip("no supernode with room for an out-of-pattern entry")
    bad_lower = CSCMatrix(
        a_lower.shape, a_lower.indptr, indices, a_lower.data, check=False
    )
    with pytest.raises(ValueError, match="pattern"):
        build_assembly_plan(bad_lower, sf)


# ----------------------------------------------------------------------
# lint scope: repro.bench is inside the determinism fence
# ----------------------------------------------------------------------
class TestLintScope:
    def test_bench_in_deterministic_modules(self):
        from repro.lint import LintConfig

        assert any(
            "repro.bench".startswith(m) or m == "repro.bench"
            for m in LintConfig().deterministic_modules
        )

    def test_bench_package_is_clean_under_determinism_rules(self):
        from repro.lint import run_lint

        res = run_lint([REPO / "src" / "repro" / "bench"],
                       src_roots=[REPO / "src"])
        assert res.parse_errors == []
        assert [f.rule_id for f in res.findings] == []
        # exactly one sanctioned wall-clock read: the runner's timer
        rpl010 = [f for f in res.suppressed if f.rule_id == "RPL010"]
        assert len(rpl010) == 1
        assert rpl010[0].path.endswith("runner.py")
