"""The differential verification subsystem (:mod:`repro.verify`)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dense.kernels as hk
from repro.matrices import grid_laplacian_2d, random_spd
from repro.matrices.csc import CSCMatrix
from repro.symbolic import symbolic_factorize
from repro.verify import (
    check_amalgamated_structure,
    VerifyConfig,
    check_factor_residual,
    check_schedule_precedence,
    check_symbolic_structure,
    check_update_conservation,
    default_pairs,
    factor_fingerprint,
    generate_case,
    load_case,
    normwise_backward_error,
    pairs_by_name,
    principal_submatrix,
    run_fuzz,
    run_invariants,
    save_case,
    shrink_matrix,
    verify_matrix,
    verify_pair,
)


# ----------------------------------------------------------------------
# configuration lattice
# ----------------------------------------------------------------------
class TestLattice:
    def test_bitwise_pairs_agree_on_grid(self, lap2d_small):
        for pair in pairs_by_name("bitwise"):
            report = verify_pair(lap2d_small, pair)
            assert report.ok, f"{pair.name}: {report.violations}"
            assert (
                report.details["left_fingerprint"]
                == report.details["right_fingerprint"]
            )

    def test_normwise_pairs_bounded_on_grid(self, lap2d_small):
        for pair in pairs_by_name("normwise"):
            report = verify_pair(lap2d_small, pair)
            assert report.ok, f"{pair.name}: {report.violations}"

    def test_fingerprint_distinguishes_values(self, lap2d_small):
        scaled = CSCMatrix(
            lap2d_small.shape, lap2d_small.indptr, lap2d_small.indices,
            lap2d_small.data * 2.0, check=False,
        )
        prints = []
        for a in (lap2d_small, scaled):
            solver = VerifyConfig().build_solver(a)
            solver.analyze().factorize()
            prints.append(factor_fingerprint(solver.factor))
        assert prints[0] != prints[1]

    def test_fingerprint_is_deterministic(self, lap2d_small):
        config = VerifyConfig(policy="P4", backend="static")
        prints = []
        for _ in range(2):
            solver = config.build_solver(lap2d_small)
            solver.analyze().factorize()
            prints.append(factor_fingerprint(solver.factor))
        assert prints[0] == prints[1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VerifyConfig(backend="bogus")
        with pytest.raises(ValueError):
            VerifyConfig(precision="quad")
        with pytest.raises(ValueError):
            VerifyConfig(schedule="liu", backend="static")
        with pytest.raises(ValueError):
            VerifyConfig(nodes=0)
        with pytest.raises(ValueError):
            VerifyConfig(nodes=2)            # needs backend="cluster"
        assert VerifyConfig(backend="cluster", nodes=4).label.count("cluster4")

    def test_default_pairs_cover_cluster_node_counts(self):
        cluster = [
            p for p in pairs_by_name("bitwise")
            if p.right.backend == "cluster"
        ]
        assert sorted(p.right.nodes for p in cluster) == [1, 2, 4]
        assert all(p.left.backend == "serial" for p in cluster)

    def test_backward_error_perfect_solution_is_tiny(self, lap2d_small):
        solver = VerifyConfig().build_solver(lap2d_small)
        solver.analyze().factorize()
        b = np.ones(lap2d_small.n_rows)
        res = solver.solve_refined(b)
        assert normwise_backward_error(solver.a, res.x, b) < 1e-14

    def test_backward_error_garbage_solution_is_large(self, lap2d_small):
        b = np.ones(lap2d_small.n_rows)
        # high-frequency garbage: far from any solve, and not in the
        # Laplacian's near-null constant subspace
        x = 1e6 * (-1.0) ** np.arange(lap2d_small.n_rows)
        assert normwise_backward_error(lap2d_small, x, b) > 1e-2

    def test_pairs_by_name(self):
        assert {p.promise for p in pairs_by_name("bitwise")} == {"bitwise"}
        assert {p.promise for p in pairs_by_name("normwise")} == {"normwise"}
        assert len(pairs_by_name("all")) >= len(pairs_by_name("default"))
        with pytest.raises(ValueError):
            pairs_by_name("nope")


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
class TestInvariants:
    def test_all_invariants_hold_on_suite_fixture(self, lap2d_small):
        for report in run_invariants(lap2d_small):
            assert report.ok, str(report)

    def test_symbolic_structure_clean(self, sf_lap3d):
        assert check_symbolic_structure(sf_lap3d) == []

    def test_update_conservation_detects_premature_assembly(self, sf_lap3d):
        # reversed postorder assembles parents before their children
        bad_order = list(sf_lap3d.spost)[::-1]
        violations = check_update_conservation(sf_lap3d, bad_order)
        assert violations
        assert any("before it was factored" in v for v in violations)

    def test_update_conservation_rejects_non_permutation(self, sf_lap3d):
        violations = check_update_conservation(sf_lap3d, [0] * sf_lap3d.n_supernodes)
        assert violations == ["schedule is not a permutation of the supernodes"]

    def test_schedule_precedence_on_real_schedules(self, lap2d_small):
        for backend in ("static", "dynamic"):
            config = VerifyConfig(policy="P1", backend=backend)
            solver = config.build_solver(lap2d_small)
            solver.analyze().factorize()
            assert check_schedule_precedence(
                solver.symbolic, solver.parallel.schedule
            ) == []

    def test_schedule_precedence_detects_violation(self, sf_lap3d):
        class T:
            def __init__(self, sid, start, end):
                self.sid, self.start, self.end = sid, start, end

        # every supernode "runs" at the same instant-reversed times:
        # any parent now starts before its child ends
        n = sf_lap3d.n_supernodes
        tasks = [T(s, float(n - i), float(n - i) + 1.0)
                 for i, s in enumerate(sf_lap3d.spost)]
        assert check_schedule_precedence(sf_lap3d, tasks)

    def test_runtime_result_validate(self, lap2d_small):
        from repro.parallel import make_worker_pool
        from repro.policies import make_policy
        from repro.runtime import dynamic_schedule

        sf = symbolic_factorize(lap2d_small, ordering="amd")
        dyn = dynamic_schedule(sf, make_policy("P1"), make_worker_pool(2, 0))
        assert dyn.validate(sf) == []


# ----------------------------------------------------------------------
# shrinker
# ----------------------------------------------------------------------
class TestShrinker:
    def test_principal_submatrix_of_spd_is_spd(self, lap2d_small):
        keep = np.array([0, 3, 17, 42, 80], dtype=np.int64)
        sub = principal_submatrix(lap2d_small, keep)
        assert sub.n_rows == 5
        dense = sub.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.linalg.eigvalsh(dense).min() > 0

    def test_shrinks_seeded_predicate_to_minimal_witness(self):
        # the failure "reproduces" whenever vertex 0's diagonal survives
        # with its original value: the minimal witness is the 1x1 matrix
        # containing it — well under the required 8x8
        a = grid_laplacian_2d(10, 10)
        marker = float(a.to_dense()[0, 0])

        def predicate(m: CSCMatrix) -> bool:
            d = np.diag(m.to_dense())
            return bool(np.any(d == marker))

        result = shrink_matrix(a, predicate)
        assert result.original_n == 100
        assert result.n <= 8
        assert predicate(result.matrix)

    def test_raises_on_passing_input(self, lap2d_small):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_matrix(lap2d_small, lambda m: False)

    def test_predicate_exception_counts_as_pass(self):
        a = grid_laplacian_2d(6, 6)

        def predicate(m: CSCMatrix) -> bool:
            if m.n_rows < 10:
                raise RuntimeError("candidate breaks elsewhere")
            return True

        result = shrink_matrix(a, predicate)
        # shrinking stalls at the exception frontier instead of crashing
        assert result.n >= 10

    def test_respects_test_budget(self):
        a = grid_laplacian_2d(8, 8)
        calls = []

        def predicate(m):
            calls.append(1)
            return True

        shrink_matrix(a, predicate, max_tests=10)
        assert len(calls) <= 12          # initial check + budgeted tests


# ----------------------------------------------------------------------
# the acceptance criterion: an injected kernel bug is caught and shrunk
# ----------------------------------------------------------------------
@pytest.fixture
def broken_syrk(monkeypatch):
    """Inject a biased ``syrk`` — every trailing update is slightly wrong."""
    orig = hk.syrk

    def bad_syrk(c, x, *, counts=None):
        orig(c, x, counts=counts)
        c += 1e-3 * max(abs(float(c.max())), 1.0)

    monkeypatch.setattr(hk, "syrk", bad_syrk)
    return bad_syrk


class TestInjectedBug:
    def test_harness_catches_injected_syrk_bug(self, broken_syrk):
        a = grid_laplacian_2d(8, 8)
        violations = check_factor_residual(a)
        assert violations
        assert "residual" in violations[0]

    def test_injected_bug_shrinks_to_minimal_witness(self, broken_syrk):
        a = grid_laplacian_2d(8, 8)
        result = shrink_matrix(
            a, lambda m: bool(check_factor_residual(m))
        )
        # syrk only runs when a supernode has a nonempty update block, so
        # the smallest failing principal submatrix is tiny but not 1x1
        assert result.n <= 8
        assert check_factor_residual(result.matrix)

    def test_fuzz_driver_catches_and_shrinks_injected_bug(self, broken_syrk, tmp_path):
        report = run_fuzz(
            budget_seconds=30.0, seed=0, max_cases=3,
            pairs=[], witness_dir=tmp_path, max_failures=1,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.check in ("structural-invariants", "factor-residual")
        assert failure.witness.n_rows <= failure.shrunk_from
        assert failure.witness_path is not None
        # the persisted witness replays to the same matrix
        replayed, meta = load_case(failure.witness_path)
        assert replayed.allclose(failure.witness)
        assert meta["check"] == failure.check


# ----------------------------------------------------------------------
# an injected amalgamation off-by-one is caught and ddmin-shrunk
# ----------------------------------------------------------------------
@pytest.fixture
def broken_amalgamate(monkeypatch):
    """Off-by-one injection: whenever amalgamation actually merges,
    emit one boundary strictly *inside* a width->=2 fundamental
    supernode.  The partition stays contiguous and numerically
    consistent — only the coarsening invariant (amalgamated boundaries
    must coincide with fundamental boundaries) can catch it."""
    import repro.symbolic.symbolic as sym

    orig = sym.amalgamate

    def bad_amalgamate(super_ptr, parent, counts, params):
        out = orig(super_ptr, parent, counts, params)
        if out.size == super_ptr.size:     # nothing merged: leave it alone
            return out
        widths = np.diff(super_ptr)
        wide = np.nonzero(widths >= 2)[0]
        if wide.size == 0:                 # no splittable fundamental node
            return out
        inside = int(super_ptr[wide[0]]) + 1
        return np.unique(np.concatenate([out, [inside]]))

    monkeypatch.setattr(sym, "amalgamate", bad_amalgamate)
    return bad_amalgamate


class TestInjectedAmalgamationBug:
    def test_clean_amalgamation_passes(self):
        assert not check_amalgamated_structure(grid_laplacian_2d(8, 8))

    def test_invariant_catches_off_by_one(self, broken_amalgamate):
        violations = check_amalgamated_structure(grid_laplacian_2d(8, 8))
        assert violations
        assert any("fundamental" in v or "containment" in v
                   for v in violations)

    def test_off_by_one_shrinks_to_minimal_witness(self, broken_amalgamate):
        a = grid_laplacian_2d(8, 8)
        result = shrink_matrix(
            a, lambda m: bool(check_amalgamated_structure(m))
        )
        assert result.n < a.n_rows
        assert check_amalgamated_structure(result.matrix)

    def test_fuzz_driver_catches_and_shrinks(
        self, broken_amalgamate, tmp_path
    ):
        report = run_fuzz(
            budget_seconds=30.0, seed=0, max_cases=8,
            pairs=[], witness_dir=tmp_path, max_failures=1,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.check == "structural-invariants"
        assert failure.witness.n_rows <= failure.shrunk_from
        replayed, meta = load_case(failure.witness_path)
        assert replayed.allclose(failure.witness)


# ----------------------------------------------------------------------
# fuzzing and the corpus
# ----------------------------------------------------------------------
class TestFuzz:
    def test_case_generation_is_deterministic(self):
        c1, c2 = generate_case(42), generate_case(42)
        assert c1.generator == c2.generator
        assert c1.a.allclose(c2.a)

    def test_generators_produce_factorizable_matrices(self):
        seen = set()
        for seed in range(12):
            case = generate_case(seed)
            seen.add(case.generator)
            solver = VerifyConfig().build_solver(case.a)
            solver.analyze().factorize()   # must not raise
        assert len(seen) >= 3              # seeds cover several generators

    def test_clean_fuzz_run(self):
        report = run_fuzz(budget_seconds=20.0, seed=100, max_cases=4)
        assert report.cases_run == 4
        assert report.ok

    def test_corpus_roundtrip_is_bit_exact(self, tmp_path, rand_spd_small):
        path = tmp_path / "case.json"
        save_case(path, rand_spd_small, meta={"origin": "test"})
        loaded, meta = load_case(path)
        assert meta["origin"] == "test"
        np.testing.assert_array_equal(loaded.indptr, rand_spd_small.indptr)
        np.testing.assert_array_equal(loaded.indices, rand_spd_small.indices)
        np.testing.assert_array_equal(loaded.data, rand_spd_small.data)

    def test_corpus_replay_determinism(self, tmp_path):
        # replaying a corpus case factors to the same fingerprint twice
        a = random_spd(40, seed=9)
        path = tmp_path / "determinism.json"
        save_case(path, a)
        prints = []
        for _ in range(2):
            loaded, _ = load_case(path)
            solver = VerifyConfig().build_solver(loaded)
            solver.analyze().factorize()
            prints.append(factor_fingerprint(solver.factor))
        assert prints[0] == prints[1]

    def test_committed_corpus_passes(self):
        from repro.verify import replay_corpus
        from repro.verify.harness import DEFAULT_CORPUS

        assert DEFAULT_CORPUS.is_dir(), "tests/corpus must exist"
        assert list(DEFAULT_CORPUS.glob("*.json")), "corpus must be seeded"
        assert replay_corpus(DEFAULT_CORPUS, default_pairs()) == []


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestVerifyCli:
    def test_verify_suite_via_cli(self, capsys):
        from repro.cli import main

        rc = main([
            "verify", "--pairs", "bitwise", "--no-invariants",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential verification" in out
        assert "FAIL" not in out

    def test_verify_fuzz_via_cli(self, capsys, tmp_path):
        from repro.cli import main

        rc = main([
            "verify", "--fuzz", "--budget-seconds", "15",
            "--max-cases", "2", "--witness-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fuzz: 2 case(s)" in out

    def test_verify_matrix_collects_all_pair_reports(self, lap2d_small):
        reports = verify_matrix(lap2d_small, default_pairs())
        assert len(reports) == len(default_pairs())
        assert all(r.ok for r in reports)
