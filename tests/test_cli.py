"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def matrix_file(tmp_path):
    path = tmp_path / "a.mtx"
    assert main(["generate", "lap3d", "6", "6", "6", "--out", str(path)]) == 0
    return path


def test_spec(capsys):
    assert main(["spec"]) == 0
    out = capsys.readouterr().out
    assert "Tesla T10" in out
    assert "Xeon 5160" in out
    assert "12 GF/s dp peak" in out


def test_generate_kinds(tmp_path, capsys):
    for kind, dims in (
        ("lap2d", ["5", "4"]),
        ("lap3d", ["3", "3", "3"]),
        ("elasticity", ["2", "2", "2"]),
        ("random", ["50"]),
    ):
        out = tmp_path / f"{kind}.mtx"
        assert main(["generate", kind, *dims, "--out", str(out)]) == 0
        assert out.exists()


def test_generate_wrong_dims(tmp_path):
    with pytest.raises(SystemExit):
        main(["generate", "lap3d", "4", "4", "--out", str(tmp_path / "x.mtx")])


def test_analyze(matrix_file, capsys):
    assert main(["analyze", str(matrix_file), "--ordering", "amd"]) == 0
    out = capsys.readouterr().out
    assert "supernodes" in out
    assert "nnz(L)" in out


def test_solve_ones(matrix_file, tmp_path, capsys):
    sol = tmp_path / "x.txt"
    rc = main([
        "solve", str(matrix_file), "--policy", "P1", "--out", str(sol),
    ])
    assert rc == 0
    assert sol.exists()
    out = capsys.readouterr().out
    assert "refinement step" in out
    x = np.loadtxt(sol)
    assert x.shape == (216,)


def test_solve_with_rhs_file(matrix_file, tmp_path):
    rhs = tmp_path / "b.txt"
    np.savetxt(rhs, np.ones(216))
    assert main(["solve", str(matrix_file), "--rhs", str(rhs)]) == 0


def test_solve_hybrid_policy(matrix_file):
    assert main(["solve", str(matrix_file), "--policy", "baseline"]) == 0


def test_policies(capsys):
    assert main(["policies", "--m", "2000", "--k", "800"]) == 0
    out = capsys.readouterr().out
    assert "best base policy" in out
    # at this size a GPU policy must win
    assert "P3" in out.splitlines()[-1] or "P4" in out.splitlines()[-1]


def test_policies_small_call(capsys):
    assert main(["policies", "--m", "10", "--k", "5"]) == 0
    assert "best base policy: P1" in capsys.readouterr().out


def test_train_and_save(tmp_path, capsys):
    out = tmp_path / "clf.json"
    rc = main([
        "train", "--samples", "80", "--seed", "3", "--out", str(out),
    ])
    assert rc == 0
    assert out.exists()
    from repro.autotune import PolicyClassifier

    clf = PolicyClassifier.load(out)
    assert clf.predict_one(5, 3) in ("P1", "P2", "P3", "P4")


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_runtime_bench(capsys):
    assert main(["runtime-bench", "--cpus", "2", "--budget-frac", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "runtime-bench" in out
    assert "dyn/static" in out
    assert "lap2d-32x32" in out


def test_runtime_bench_with_faults_and_trace(tmp_path, capsys):
    trace = tmp_path / "rt.json"
    rc = main([
        "runtime-bench", "--cpus", "2", "--gpus", "1", "--policy", "P3",
        "--fail-rate", "0.05", "--stall-rate", "0.1",
        "--trace", str(trace),
    ])
    assert rc == 0
    import json

    doc = json.loads(trace.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
