"""Elimination tree construction and traversal."""

import numpy as np
import pytest

from repro.matrices.csc import csc_from_dense
from repro.matrices import grid_laplacian_2d, random_spd
from repro.symbolic import elimination_tree, postorder
from repro.symbolic.etree import NO_PARENT


def arrow_matrix(n=6):
    """Arrow pointing down-right: dense last row/col + diagonal."""
    d = np.eye(n) * 4.0
    d[-1, :] = d[:, -1] = -1.0
    d[-1, -1] = float(n)
    return csc_from_dense(d)


def reference_parent(a):
    """Brute-force etree: factor densely, parent(j) = min{i>j: L[i,j]!=0}."""
    l = np.linalg.cholesky(a.to_dense())
    n = l.shape[0]
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(np.abs(l[j + 1:, j]) > 1e-12)
        if below.size:
            parent[j] = j + 1 + below[0]
    return parent


class TestParents:
    def test_arrow_all_point_to_last(self):
        tree = elimination_tree(arrow_matrix(6))
        assert np.array_equal(tree.parent[:-1], np.full(5, 5))
        assert tree.parent[-1] == NO_PARENT

    def test_matches_bruteforce_on_laplacian(self):
        a = grid_laplacian_2d(5, 4)
        tree = elimination_tree(a)
        assert np.array_equal(tree.parent, reference_parent(a))

    def test_matches_bruteforce_on_random(self):
        a = random_spd(40, seed=11)
        tree = elimination_tree(a)
        assert np.array_equal(tree.parent, reference_parent(a))

    def test_lower_storage_accepted(self):
        a = grid_laplacian_2d(4, 4)
        t_full = elimination_tree(a)
        t_low = elimination_tree(a.lower_triangle())
        assert np.array_equal(t_full.parent, t_low.parent)

    def test_diagonal_matrix_is_forest_of_roots(self):
        a = csc_from_dense(np.eye(5))
        tree = elimination_tree(a)
        assert (tree.parent == NO_PARENT).all()
        assert len(tree.roots()) == 5

    def test_parents_exceed_children(self):
        a = random_spd(60, seed=4)
        tree = elimination_tree(a)
        j = np.arange(60)
        has_parent = tree.parent != NO_PARENT
        assert (tree.parent[has_parent] > j[has_parent]).all()

    def test_requires_square(self, rng):
        a = csc_from_dense(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            elimination_tree(a)


class TestPostorder:
    def test_children_before_parents(self):
        a = random_spd(50, seed=7)
        tree = elimination_tree(a)
        position = np.empty(50, dtype=int)
        position[tree.post] = np.arange(50)
        for j in range(50):
            p = tree.parent[j]
            if p != NO_PARENT:
                assert position[j] < position[p]

    def test_postorder_is_permutation(self):
        a = grid_laplacian_2d(6, 6)
        tree = elimination_tree(a)
        assert np.array_equal(np.sort(tree.post), np.arange(36))

    def test_invalid_parent_array_raises(self):
        # a cycle is not a forest
        with pytest.raises(ValueError):
            postorder(np.array([1, 0]))

    def test_children_lists(self):
        tree = elimination_tree(arrow_matrix(5))
        assert tree.children(4) == [0, 1, 2, 3]
        assert tree.children(0) == []


class TestDerived:
    def test_depths(self):
        tree = elimination_tree(arrow_matrix(4))
        d = tree.depths()
        assert d[3] == 0
        assert (d[:3] == 1).all()

    def test_subtree_sizes(self):
        tree = elimination_tree(arrow_matrix(4))
        sizes = tree.subtree_sizes()
        assert sizes[3] == 4
        assert (sizes[:3] == 1).all()
