"""Extension — the dynamic event-driven runtime vs the static scheduler.

The paper's parallel runs (Section VI-C) bind every task to a worker up
front with a static list schedule.  The :mod:`repro.runtime` extension
executes the same supernodal DAG through an asynchronous event-driven
engine — work stealing, memory-aware admission, dispatch-time policy
selection, injected-fault tolerance — and this bench quantifies the
trade: comparable makespan and bit-identical factors, plus the ability
to honor a device/stack memory budget the static schedule exceeds and
to survive injected GPU kernel failures.
"""

import numpy as np

from repro.analysis import format_table
from repro.matrices import grid_laplacian_2d, grid_laplacian_3d
from repro.parallel import list_schedule, make_worker_pool, parallel_factorize
from repro.policies import make_policy
from repro.runtime import (
    FaultInjector,
    dynamic_schedule,
    schedule_peak_update_bytes,
)
from repro.symbolic import symbolic_factorize


def test_extension_runtime(save, benchmark):
    a = grid_laplacian_2d(32, 32)
    sf = symbolic_factorize(a, ordering="nd")
    policy = make_policy("P1")

    # --- makespan + stealing, 4 CPU workers --------------------------------
    pool = make_worker_pool(4, 0)
    static = list_schedule(sf, policy, pool, gang_threshold=np.inf)
    dyn = dynamic_schedule(sf, policy, make_worker_pool(4, 0))
    assert dyn.stats.steals >= 1
    assert dyn.makespan <= 1.25 * static.makespan

    # --- memory budget the static schedule exceeds -------------------------
    static_peak = schedule_peak_update_bytes(sf, static.schedule)
    budget = int(0.9 * static_peak)
    capped = dynamic_schedule(
        sf, policy, make_worker_pool(4, 0), memory_budget=budget
    )
    assert static_peak > budget
    assert capped.stats.peak_admitted_bytes <= budget
    assert capped.stats.forced_admissions == 0
    assert capped.stats.admission_deferrals > 0
    assert len(capped.schedule) == sf.n_supernodes

    # --- bit-identical factors through parallel_factorize ------------------
    a3 = grid_laplacian_3d(6, 6, 6)
    sf3 = symbolic_factorize(a3, ordering="nd")
    pol = make_policy("P2")
    rs = parallel_factorize(a3, sf3, pol, make_worker_pool(2, 2),
                            backend="static")
    rd = parallel_factorize(a3, sf3, pol, make_worker_pool(2, 2),
                            backend="dynamic")
    identical = all(
        np.array_equal(ps, pd)
        for ps, pd in zip(rs.factor.panels, rd.factor.panels)
    )
    assert identical

    # --- injected GPU faults: degrade, don't raise -------------------------
    mk = [(s, sf3.update_size(s) * sf3.width(s)) for s in range(sf3.n_supernodes)]
    fail_sids = frozenset(s for s, _ in sorted(mk, key=lambda t: -t[1])[:3])
    faults = FaultInjector(fail_sids=fail_sids, seed=3)
    rf = parallel_factorize(a3, sf3, make_policy("P3"), make_worker_pool(2, 2),
                            backend="dynamic", faults=faults)
    assert rf.degraded
    assert rf.runtime.degraded_sids == fail_sids
    assert rf.factor is not None  # completed despite the failures

    s = dyn.stats
    c = capped.stats
    rows = [
        ["workers", 4],
        ["static makespan (ms)", f"{static.makespan * 1e3:.3f}"],
        ["dynamic makespan (ms)", f"{dyn.makespan * 1e3:.3f}"],
        ["dynamic / static", f"{dyn.makespan / static.makespan:.3f}"],
        ["steal transactions / tasks stolen", f"{s.steals} / {s.stolen_tasks}"],
        ["static peak update-stack (bytes)", static_peak],
        ["memory budget (bytes)", budget],
        ["dynamic peak under budget (bytes)", c.peak_admitted_bytes],
        ["admission deferrals", c.admission_deferrals],
        ["forced admissions", c.forced_admissions],
        ["factors bit-identical to static", identical],
        ["injected kernel failures -> degraded tasks",
         f"{len(fail_sids)} -> {rf.runtime.stats.degraded_tasks}"],
    ]
    text = format_table(
        ["metric", "value"], rows,
        title="Extension — event-driven runtime vs static list scheduler",
    )
    text += (
        "\nthe dynamic engine matches the static makespan within a few "
        "percent while bootstrapping its workers by stealing, honors a "
        "memory budget the static schedule exceeds by deferring (not "
        "dropping) fronts, and completes under injected GPU faults by "
        "degrading the failed fronts to the host path."
    )
    save("extension_runtime", text)

    benchmark(lambda: dynamic_schedule(sf, policy, make_worker_pool(4, 0)))
