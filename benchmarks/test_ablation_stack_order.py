"""Ablation — update-stack working memory vs traversal order.

The multifrontal working set (host stack, or device memory under P4)
depends on the sibling visiting order; Liu's rule (heaviest transient
first) minimizes the peak.  Relevant to the paper's Section IV-B caveat
that "the memory limitations of GPU ... requires deployment and
coordination among multiple CPUs and GPUs to handle large matrices" —
a smaller working set pushes the limit out.
"""

from repro.analysis import format_table
from repro.symbolic.stack import (
    estimate_peak_update_bytes,
    stack_minimizing_postorder,
)
from repro.workload import PAPER_WORKLOADS


def test_ablation_stack_order(suite, save, benchmark):
    rows = []
    gains = []
    for spec in PAPER_WORKLOADS:
        sf = suite.workload(spec.name)
        default = estimate_peak_update_bytes(sf)
        optimized = estimate_peak_update_bytes(
            sf, stack_minimizing_postorder(sf)
        )
        gain = default / optimized
        gains.append(gain)
        rows.append(
            [spec.name, default / 2**20, optimized / 2**20, gain]
        )
    text = format_table(
        ["workload", "default peak MiB", "Liu-order peak MiB", "ratio"],
        rows,
        title="Ablation — update-stack peak vs traversal order (paper scale)",
        float_fmt="{:.2f}",
    )
    save("ablation_stack_order", text)

    # never worse, and at least one workload visibly improves
    assert all(g >= 1.0 - 1e-12 for g in gains)
    assert max(gains) > 1.02

    sf = suite.workload("lmco")
    benchmark(lambda: stack_minimizing_postorder(sf))
