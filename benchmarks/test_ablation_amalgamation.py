"""Ablation — relaxed supernode amalgamation on vs off.

Amalgamation trades explicit zeros for wider supernodes.  That changes
the very distribution of (m, k) the hybrid policies schedule: more calls
land past the GPU transition points, small-call launch overhead
amortizes, and the end-to-end simulated time drops — at the price of
extra stored/computed entries.
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu import SimulatedNode
from repro.matrices import grid_laplacian_3d
from repro.multifrontal.numeric import replay_factorize
from repro.symbolic import AmalgamationParams, symbolic_factorize


def stats(suite, sf):
    node = SimulatedNode(model=suite.model, n_cpus=1, n_gpus=1)
    hybrid = replay_factorize(sf, suite.policy("ideal"), node=node)
    node = SimulatedNode(model=suite.model, n_cpus=1, n_gpus=1)
    host = replay_factorize(sf, suite.policy("P1"), node=node)
    mk = sf.mk_pairs()
    return {
        "n_super": sf.n_supernodes,
        "nnz": sf.nnz_factor,
        "flops": sf.total_flops(),
        "median_k": float(np.median(mk[:, 1])),
        "t_host": host.makespan,
        "t_hybrid": hybrid.makespan,
    }


def test_ablation_amalgamation(suite, save, benchmark):
    a = grid_laplacian_3d(24, 24, 24)
    sf_off = symbolic_factorize(
        a, ordering="nd", amalgamation=AmalgamationParams(max_width=0)
    )
    sf_on = symbolic_factorize(a, ordering="nd")
    off = stats(suite, sf_off)
    on = stats(suite, sf_on)
    rows = [
        ["fundamental only"] + [off[c] for c in
            ("n_super", "nnz", "flops", "median_k", "t_host", "t_hybrid")],
        ["relaxed (default)"] + [on[c] for c in
            ("n_super", "nnz", "flops", "median_k", "t_host", "t_hybrid")],
    ]
    text = format_table(
        ["amalgamation", "supernodes", "nnz(L)", "flops", "median k",
         "host s", "hybrid s"],
        rows,
        title="Ablation — supernode amalgamation (24^3 Laplacian)",
        float_fmt="{:.4g}",
    )
    save("ablation_amalgamation", text)

    # amalgamation: fewer/wider supernodes, more stored entries
    assert on["n_super"] < off["n_super"]
    assert on["nnz"] >= off["nnz"]
    assert on["median_k"] >= off["median_k"]
    # the wider calls make both schedules faster despite the extra flops
    assert on["t_hybrid"] < off["t_hybrid"]
    assert on["t_host"] < off["t_host"]

    benchmark(
        lambda: symbolic_factorize(
            grid_laplacian_3d(10, 10, 10), ordering="nd"
        )
    )
