"""Section IV-B — the Equation 1/2 cost model and the achieved PCIe
bandwidth.

* beta: the paper measures ~1.4 GB/s effective over the PCIe x8 link;
  our transfer model averages the pageable/pinned mix to the same value.
* Equations 1/2 predict per-call times from the stabilized rates; for
  large calls the prediction error vanishes, for small calls it is
  large (the justification for empirical auto-tuning over closed-form
  modeling).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.policies import estimate_policy_time, make_policy
from repro.symbolic.symbolic import factor_update_flops


def eq1_time(model, m, k):
    np_, nt, ns = factor_update_flops(m, k)
    return (
        np_ / model.cpu["potrf"].peak
        + nt / model.cpu["trsm"].peak
        + ns / model.cpu["syrk"].peak
    )


def eq2_time(model, m, k, beta=1.4e9):
    np_, nt, ns = factor_update_flops(m, k)
    word = model.gpu_word
    return (
        np_ / model.cpu["potrf"].peak
        + nt / model.gpu["trsm"].peak
        + ns / model.gpu["syrk"].peak
        + (k * k + 2 * m * k) * word / beta
        + m * m * word / beta
    )


def test_eqn12_cost_model(model, save, benchmark):
    # --- achieved bandwidth --------------------------------------------
    nbytes = 64 * 2**20
    bw_pageable = nbytes / model.transfer_time(nbytes, pinned=False)
    bw_pinned = nbytes / model.transfer_time(nbytes, pinned=True)
    bw_avg = (bw_pageable + bw_pinned) / 2

    rows = []
    checks = []
    for m, k in [(60, 25), (250, 100), (1000, 400), (4000, 1600), (9000, 3600)]:
        t1_pred = eq1_time(model, m, k)
        t1_obs = estimate_policy_time(make_policy("P1"), m, k, model)
        t2_pred = eq2_time(model, m, k)
        t2_obs = estimate_policy_time(make_policy("basic"), m, k, model)
        rows.append(
            [m, k, t1_pred / t1_obs, t2_pred / t2_obs]
        )
        checks.append((m * k * k + m * m * k, t1_pred / t1_obs, t2_pred / t2_obs))
    text = format_table(
        ["m", "k", "Eq1/observed (CPU)", "Eq2/observed (basic GPU)"],
        rows,
        title="Eq. 1/2 cost-model accuracy",
        float_fmt="{:.3f}",
    )
    text += (
        f"\nachieved PCIe bandwidth: pageable {bw_pageable/1e9:.2f}, "
        f"pinned {bw_pinned/1e9:.2f}, mix {bw_avg/1e9:.2f} GB/s "
        "(paper: ~1.4 GB/s)"
    )
    save("eqn12_cost_model", text)

    assert bw_avg / 1e9 == pytest.approx(1.4, rel=0.1)
    # prediction converges for large calls...
    big = checks[-1]
    assert big[1] == pytest.approx(1.0, abs=0.1)
    assert big[2] == pytest.approx(1.0, abs=0.25)
    # ...and is noticeably off for the small ones (paper: "the actual
    # empirical speedups show a variance with respect to the theoretical
    # ones because ... small and moderate matrices [are] far from the
    # idealized model")
    small = checks[0]
    assert abs(small[2] - 1.0) > 0.15

    benchmark(lambda: [eq2_time(model, 1000, 400) for _ in range(100)])
