"""Extension — device-resident update matrices (the §VI-C mechanism).

"While implementing the multiple thread multiple GPU version, we
observed that a few copy optimizations could be made for policy P4.
With the copy optimized version, P4 was the better policy for even
moderately sized frontal matrices."  This bench quantifies the
mechanism on the paper-scale workloads: keeping update matrices on the
device turns the PCIe round trip of plain P4 into device-bandwidth
extend-adds, and pushes the P4-wins threshold down by orders of
magnitude.
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu import SimulatedNode
from repro.multifrontal.device_resident import flops_placement, replay_resident
from repro.multifrontal.numeric import replay_factorize
from repro.policies import make_policy
from repro.workload import PAPER_WORKLOADS


def test_extension_device_resident(suite, model, save, benchmark):
    rows = []
    results = {}
    for spec in PAPER_WORKLOADS[:3]:
        sf = suite.workload(spec.name)
        serial = suite.schedule(spec.name, "P1", 1, 0).makespan
        p4 = replay_factorize(
            sf, make_policy("P4"),
            node=SimulatedNode(model=model, n_cpus=1, n_gpus=1),
        ).makespan
        ideal = suite.schedule(spec.name, "ideal", 1, 1).makespan
        res_nf, stats = replay_resident(
            sf,
            node=SimulatedNode(model=model, n_cpus=1, n_gpus=1),
            place_on_device=flops_placement(2e6),
        )
        results[spec.name] = (serial, p4, ideal, res_nf.makespan, stats)
        rows.append(
            [spec.name,
             serial / p4, serial / ideal, serial / res_nf.makespan,
             stats.resident_reuse_bytes / 2**30,
             (stats.h2d_bytes + stats.d2h_bytes) / 2**30,
             stats.n_spills]
        )
    text = format_table(
        ["workload", "P4 speedup", "ideal-hybrid", "P4-resident",
         "resident GiB", "PCIe GiB", "spills"],
        rows,
        title="Extension — device-resident update matrices (paper scale)",
        float_fmt="{:.2f}",
    )
    text += (
        "\nresident GiB = update-matrix traffic that never crossed PCIe; "
        "plain P4 would round-trip every front."
    )
    save("extension_device_resident", text)

    for name, (serial, p4, ideal, resident, stats) in results.items():
        # the copy-optimized variant beats plain P4 everywhere...
        assert resident < p4, name
        # ...and matches or beats the non-resident ideal hybrid
        assert resident < 1.10 * ideal, name
        # substantial traffic stays on the device
        assert stats.resident_reuse_bytes > stats.h2d_bytes

    sf = suite.workload("lmco")
    benchmark(
        lambda: replay_resident(
            sf, node=SimulatedNode(model=model, n_cpus=1, n_gpus=1)
        )[0].makespan
    )
