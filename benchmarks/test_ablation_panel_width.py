"""Ablation — panel-width sensitivity of the blocked GPU potrf (Fig. 9).

The width `w` is the one free parameter of the Section V-A1 algorithm.
Narrow panels are catastrophic (the slow w x w potrf kernel plus five
kernel launches per step dominate); widening recovers throughput
quickly.  The library's heuristic (`default_panel_width`, ~k/48) is
*calibrated to the paper's measured Table V rates* (68-124 GF/s) rather
than to the model's asymptotic optimum — the paper's own implementation
evidently did not run at the trailing-update-limited bound either, and
pinning the heuristic there keeps Table V honest.  This bench records
the sensitivity so the choice is auditable.
"""

import numpy as np

from repro.analysis import format_table
from repro.dense.blocked import default_panel_width
from repro.gpu import CublasContext
from repro.gpu.cublas import panel_kernel_sequence


def rate(model, k, w):
    ctx = CublasContext(model)
    t = ctx.price(panel_kernel_sequence(k, k, w))
    return (k**3 / 3.0) / t / 1e9


def test_ablation_panel_width(model, save, benchmark):
    widths = (16, 32, 64, 128, 256, 512)
    rows = []
    verdicts = []
    for k in (5418, 7014, 10592):
        rates = {w: rate(model, k, w) for w in widths}
        w_best = max(rates, key=rates.get)
        w_heur = default_panel_width(k)
        r_heur = rate(model, k, w_heur)
        rows.append(
            [k] + [rates[w] for w in widths] + [w_heur, r_heur]
        )
        verdicts.append((rates[w_best], r_heur, rates[16]))
    text = format_table(
        ["k"] + [f"w={w}" for w in widths] + ["heuristic w", "GF/s"],
        rows,
        title="Ablation — blocked-potrf panel width (GF/s at m=0 roots)",
        float_fmt="{:.1f}",
    )
    save("ablation_panel_width", text)

    for best, heur, narrow in verdicts:
        # narrow panels are catastrophic; the calibrated heuristic sits
        # in the paper's measured band, within ~2x of the model optimum
        assert narrow < 0.3 * best
        assert heur >= 0.55 * best
        assert 60.0 < heur < 135.0  # the Table V band

    benchmark(lambda: rate(model, 5418, 128))
