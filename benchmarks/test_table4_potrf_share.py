"""Table IV — total potrf time and its share of the F-U total.

Paper: potrf (always on the host in the basic implementation) is < 8% of
the host implementation's time, but becomes 24-46% (with copies) / 40-55%
(without) of the basic GPU implementation's — because everything *else*
got faster.  This motivates policy P4's on-device blocked potrf.
Additionally, the potrf cost concentrates near the root: for kyushu the
top calls carry ~96% of all potrf time.

Run at paper scale (the synthetic Table II workloads); the share effect
is a large-front phenomenon that the ~20x-down numeric suite cannot
show.
"""

from repro.analysis import format_table
from repro.workload import PAPER_WORKLOADS

PAPER_ROWS = {
    # matrix: (potrf s, %Host, %GPU w/o copy, %GPU w/ copy)
    "audikw_1": (28.75, 5.43, 43.28, 29.54),
    "kyushu": (96.43, 7.48, 55.50, 46.17),
    "lmco": (20.86, 7.10, 48.32, 30.83),
    "nastran-b": (17.53, 5.95, 39.66, 24.46),
    "sgi_1M": (41.87, 5.15, 41.48, 27.85),
}


def shares(records):
    potrf = sum(r.components.get("potrf", 0.0) for r in records)
    with_copy = sum(sum(r.components.values()) for r in records)
    without = sum(
        sum(v for c, v in r.components.items() if c not in ("copy", "alloc"))
        for r in records
    )
    return potrf, with_copy, without


def test_table4_potrf_share(suite, save, benchmark):
    rows = []
    checks = []
    for spec in PAPER_WORKLOADS:
        cpu = suite.paper_records("P1", workloads=(spec.name,))
        gpu = suite.paper_records("basic", workloads=(spec.name,))
        p_cpu, tot_cpu, _ = shares(cpu)
        p_gpu, tot_gpu_wc, tot_gpu_woc = shares(gpu)
        pct_host = 100 * p_cpu / tot_cpu
        pct_gpu_woc = 100 * p_gpu / tot_gpu_woc
        pct_gpu_wc = 100 * p_gpu / tot_gpu_wc
        per_call = sorted(
            (r.components.get("potrf", 0.0) for r in gpu), reverse=True
        )
        top10 = sum(per_call[:10]) / max(p_gpu, 1e-30)
        paper = PAPER_ROWS[spec.paper_name]
        rows.append(
            [spec.name, p_gpu, pct_host, pct_gpu_woc, pct_gpu_wc,
             100 * top10, paper[1], paper[2], paper[3]]
        )
        checks.append((pct_host, pct_gpu_woc, pct_gpu_wc, top10))
    text = format_table(
        ["matrix", "potrf (s)", "%Host", "%GPU w/o cp", "%GPU w/ cp",
         "top-10 %", "paper %Host", "paper w/o", "paper w/"],
        rows,
        title="Table IV — potrf time and share of total F-U time (paper scale)",
        float_fmt="{:.1f}",
    )
    save("table4_potrf_share", text)

    for pct_host, pct_woc, pct_wc, top10 in checks:
        # host: potrf a small share (paper 5.2-7.5%)
        assert pct_host < 12.0
        # basic GPU: potrf share balloons (paper 40-55% w/o copies)
        assert pct_woc > 3.0 * pct_host
        assert pct_woc > 25.0
        # including copies dilutes the share (paper 24-46%)
        assert pct_wc < pct_woc
        # potrf concentrates near the root (paper: top ten calls ~96%
        # for kyushu)
        assert top10 > 0.5

    benchmark(lambda: shares(suite.paper_records("P1", workloads=("lmco",))))
