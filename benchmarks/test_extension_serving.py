"""Extension — the serving layer under a repeated-pattern stream.

The paper's introduction motivates direct methods with "multiple
systems with the same coefficient matrix": the expensive factorization
amortizes across solves.  The serving layer generalizes that to a
long-lived process — a pattern-keyed cache plus a concurrent solve
service — and this bench quantifies the amortization: hit rates,
factorizations avoided, and end-to-end latency percentiles for a
stream where patterns and values recur.
"""

import numpy as np

from repro.analysis import format_table
from repro.matrices import grid_laplacian_2d
from repro.matrices.csc import CSCMatrix
from repro.service import SolverService


def _stream(n_patterns, n_variants, n_requests, rng):
    bases = [grid_laplacian_2d(12 + 3 * p, 13 + 2 * p) for p in range(n_patterns)]
    variants = [
        [
            CSCMatrix(a.shape, a.indptr, a.indices,
                      a.data * (1.0 + 0.5 * v), check=False)
            for v in range(n_variants)
        ]
        for a in bases
    ]
    for i in range(n_requests):
        a = variants[i % n_patterns][(i // n_patterns) % n_variants]
        yield a, rng.normal(size=a.n_rows)


def test_extension_serving(save, benchmark):
    rng = np.random.default_rng(42)
    n = 90
    with SolverService(n_workers=2, policy="P1", ordering="amd") as svc:
        reqs = [svc.submit(a, b) for a, b in _stream(3, 3, n, rng)]
        outs = [r.result(timeout=600) for r in reqs]

    rep = svc.report()
    lat = rep["latency"]["total"]
    misses = sum(1 for o in outs if o.tier == "miss")
    hit_rate = (n - misses) / n
    factorizations = svc.metrics.counter("numeric_factorizations")

    rows = [
        ["requests", n],
        ["distinct patterns / value variants", "3 / 9"],
        ["cold misses (fresh analyses)", misses],
        ["symbolic-tier hit rate", f"{hit_rate:.1%}"],
        ["numeric factorizations", factorizations],
        ["requests in shared multi-RHS batches",
         svc.metrics.counter("batched_requests")],
        ["cache evictions", rep["cache"]["evictions"]],
        ["p50 latency (ms)", f"{lat['p50'] * 1e3:.2f}"],
        ["p95 latency (ms)", f"{lat['p95'] * 1e3:.2f}"],
    ]
    text = format_table(
        ["metric", "value"], rows,
        title="Extension — solver-as-a-service, repeated-pattern stream",
    )
    text += (
        "\nthe factorization amortizes exactly as the introduction's "
        "multiple-systems argument predicts: one analysis per pattern, one "
        "factorization per value variant, everything else rides the cache."
    )
    save("extension_serving", text)

    assert hit_rate >= 0.8
    # one factorization per distinct (pattern, values) pair, no duplicates
    assert factorizations == 9
    for o, r in zip(outs, reqs):
        res = r.b - r.canonical.matvec(o.x)
        assert np.abs(res).max() / np.abs(r.b).max() < 1e-10

    def warm_solve():
        a = grid_laplacian_2d(12, 13)
        with SolverService(n_workers=1, policy="P1") as s:
            s.solve(a, np.ones(a.n_rows))
            return s.solve(a, np.ones(a.n_rows)).tier

    benchmark(warm_solve)
