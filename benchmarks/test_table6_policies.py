"""Table VI — the four factor-update policies.

Descriptive in the paper; here we *verify* each policy's placement by
inspecting the engines its planned tasks run on, so the table is
guaranteed to match the implementation.
"""

from repro.analysis import format_table
from repro.gpu import SimulatedNode
from repro.gpu.clock import TaskGraph
from repro.policies import Worker, make_policy

DESCRIPTIONS = {
    "P1": "potrf, trsm, syrk all on CPU",
    "P2": "potrf, trsm on CPU; syrk on GPU",
    "P3": "potrf on CPU; trsm, syrk on GPU",
    "P4": "potrf, trsm, syrk all on GPU",
}


def kernel_placement(policy, m, k, worker, model):
    g = TaskGraph()
    policy.plan(m, k, worker, model, g)
    out = {}
    for t in g.tasks:
        if t.category in ("potrf", "trsm", "syrk", "gemm"):
            dev = "GPU" if t.engine.startswith("gpu") else "CPU"
            out.setdefault(t.category, set()).add(dev)
    return {c: "/".join(sorted(devs)) for c, devs in out.items()}


def test_table6_policies(model, save, benchmark):
    node = SimulatedNode(model=model)
    worker = Worker("cpu0", node.gpus[0])
    rows = []
    placements = {}
    for name, desc in DESCRIPTIONS.items():
        pol = make_policy(name)
        pl = kernel_placement(pol, 600, 200, worker, model)
        placements[name] = pl
        rows.append(
            [name, desc, pl.get("potrf", "-"), pl.get("trsm", "-"),
             pl.get("syrk", "-")]
        )
    text = format_table(
        ["policy", "paper description", "potrf", "trsm", "syrk"],
        rows,
        title="Table VI — policies for a Factor-Update operation (verified)",
    )
    save("table6_policies", text)

    assert placements["P1"] == {"potrf": "CPU", "trsm": "CPU", "syrk": "CPU"}
    assert placements["P2"]["potrf"] == "CPU"
    assert placements["P2"]["trsm"] == "CPU"
    assert placements["P2"]["syrk"] == "GPU"
    assert placements["P3"]["potrf"] == "CPU"
    assert placements["P3"]["trsm"] == "GPU"
    assert placements["P3"]["syrk"] == "GPU"
    # P4: every dense kernel on the GPU, including the panel potrf
    assert set(placements["P4"].values()) == {"GPU"}

    benchmark(lambda: kernel_placement(make_policy("P3"), 600, 200, worker, model))
