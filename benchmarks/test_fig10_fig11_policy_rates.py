"""Figures 10 & 11 — per-policy flop rate and speedup vs total operations.

Paper: P1 dominates below ~2e6 ops, P2 in 2e6-1.5e7, P3 in 1.5e7-9e10,
and P4 above — the transitions the baseline hybrid P_BH is built from.
Speedups over the host implementation rise from 1x (small calls) to
>10x for the largest calls.
"""

import numpy as np

from repro.analysis import format_table
from repro.policies import estimate_policy_time, make_policy
from repro.symbolic.symbolic import factor_update_flops

POLICIES = ("P1", "P2", "P3", "P4")


def sweep(model, aspect=3.0, n=26):
    """Per-policy time across a log sweep of call sizes (m = aspect*k)."""
    out = []
    for k in np.unique(np.logspace(0.8, 4.0, n).astype(int)):
        m = int(aspect * k)
        ops = sum(factor_update_flops(m, k))
        times = {
            p: estimate_policy_time(make_policy(p), m, k, model) for p in POLICIES
        }
        out.append((m, k, ops, times))
    return out


def test_fig10_fig11_policy_rates(model, save, benchmark):
    data = sweep(model)
    rows10, rows11 = [], []
    for m, k, ops, times in data:
        rows10.append([f"{ops:.2e}"] + [ops / times[p] / 1e9 for p in POLICIES])
        rows11.append(
            [f"{ops:.2e}"] + [times["P1"] / times[p] for p in POLICIES]
        )
    text = format_table(
        ["ops"] + [f"{p} GF/s" for p in POLICIES], rows10,
        title="Fig 10 — flop rate per policy", float_fmt="{:.2f}",
    )
    text += "\n\n" + format_table(
        ["ops"] + [f"{p} speedup" for p in POLICIES], rows11,
        title="Fig 11 — speedup vs host CPU per policy", float_fmt="{:.2f}",
    )
    # best-policy transitions along the sweep
    winners = [
        (ops, min(times, key=times.get)) for _, _, ops, times in data
    ]
    text += "\n\nbest policy along the sweep (m = 3k):\n" + "\n".join(
        f"  {ops:.2e}: {w}" for ops, w in winners
    )
    save("fig10_fig11_policy_rates", text)

    # paper structure: P1 wins small, then P2, then P3/P4; speedups >10x
    # for the largest calls
    assert winners[0][1] == "P1"
    order = [w for _, w in winners]
    assert "P2" in order or "P3" in order
    assert order[-1] in ("P3", "P4")
    # transitions are ordered: last P1 win before first P3/P4 win
    last_p1 = max(o for o, w in winners if w == "P1")
    first_gpu = min(o for o, w in winners if w in ("P3", "P4"))
    assert last_p1 < first_gpu
    # the paper's P1 band edge (~2e6 ops) within a factor ~4
    assert 3e5 < last_p1 < 1e7
    big = data[-1]
    assert big[3]["P1"] / min(big[3].values()) > 8.0

    benchmark(lambda: sweep(model, n=8))
