"""Figure 2(a-c) — distribution of F-U computation time over the m x k grid.

The paper bins all factor-update calls of the suite on a 500x500-bin
grid up to 10000 and plots the fraction of total time per bin for (a)
the host CPU implementation, (b) the basic GPU implementation including
copies, and (c) the same excluding copies.  Our matrices are ~100x
smaller, so the grid scales to 50x50 bins up to 1000 (same 20x20 bin
resolution as the paper).

Shape assertions (the paper's observations):
* ~97% of calls fall in the small-call corner (k <= 500, m <= 1000 in
  paper units; k <= 50, m <= 100 here),
* yet most *time* is in bins with moderate/large matrices,
* including copy time shifts weight toward smaller bins (Fig 2b vs 2c).
"""

import numpy as np

from repro.analysis import GridBinner, ascii_heatmap, time_fraction_grid
from repro.analysis.instrument import records_mk

BINNER = GridBinner(bin_size=50, extent=1000)


def weighted_large_share(records, grid, binner):
    """Fraction of time in bins beyond the first row+column block."""
    large = grid.copy()
    large[0, 0] = 0.0
    return large.sum()


def test_fig2_load_distribution(suite, save, benchmark):
    cpu_records = suite.all_records("P1")
    gpu_records = suite.all_records("basic")

    grid_a = time_fraction_grid(cpu_records, BINNER)
    grid_b = time_fraction_grid(gpu_records, BINNER, include_copy=True)
    grid_c = time_fraction_grid(gpu_records, BINNER, include_copy=False)

    text = "\n\n".join(
        [
            ascii_heatmap(grid_a, title="Fig 2(a) — fraction of F-U time, host CPU"),
            ascii_heatmap(grid_b, title="Fig 2(b) — basic GPU incl. copy"),
            ascii_heatmap(grid_c, title="Fig 2(c) — basic GPU excl. copy"),
        ]
    )

    # paper: ~97% of calls are small (k <= 500, m <= 1000 at paper scale)
    m, k = records_mk(cpu_records)
    small_calls = float(((k <= 50) & (m <= 100)).mean())
    text += f"\n\nsmall-call share (k<=50, m<=100): {small_calls:.1%} (paper: ~97%)"

    # most time nevertheless sits outside the smallest bin
    large_a = weighted_large_share(cpu_records, grid_a, BINNER)
    large_b = weighted_large_share(gpu_records, grid_b, BINNER)
    large_c = weighted_large_share(gpu_records, grid_c, BINNER)
    text += (
        f"\ntime share beyond the smallest bin: CPU {large_a:.1%}, "
        f"GPU w/copy {large_b:.1%}, GPU w/o copy {large_c:.1%}"
    )
    save("fig2_load_distribution", text)

    assert small_calls > 0.85
    assert large_a > 0.5, "large calls must dominate CPU time"
    # Fig 2b vs 2c: counting copies shifts weight toward small calls,
    # i.e. the small-bin share grows when copies are included
    assert grid_b[0, 0] > grid_c[0, 0]

    benchmark(lambda: time_fraction_grid(cpu_records, BINNER))
