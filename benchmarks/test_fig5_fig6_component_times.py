"""Figures 5 & 6 — per-component timings (absolute and fractional) for the
host CPU and basic GPU implementations, against the call's operation count.

Paper observations reproduced here:
* trsm and syrk on the GPU are *more* expensive than on the CPU for small
  calls (#ops < 1e5) and cheaper for large calls (#ops > 1e8 at paper
  scale; our scaled problems cross within their range),
* copy time is a large fraction for small calls and fades for large ones.
"""

import numpy as np

from repro.analysis import component_fractions, component_times, format_table
from repro.analysis.instrument import rate_series


def test_fig5_fig6_component_times(suite, save, benchmark):
    cpu_records = suite.all_records("P1")
    gpu_records = suite.all_records("basic")

    cpu = component_times(cpu_records)
    gpu = component_times(gpu_records)
    gpu_frac = component_fractions(gpu_records)

    # log-binned series for the text figure
    lines = ["Fig 5 — component busy seconds vs total ops (log-binned medians)"]
    for label, data, comps in (
        ("host CPU", cpu, ("potrf", "trsm", "syrk")),
        ("basic GPU", gpu, ("potrf", "trsm", "syrk", "copy")),
    ):
        lines.append(f"\n[{label}]")
        for comp in comps:
            centers, rates = rate_series(data["ops"], np.maximum(data[comp], 1e-12))
            # rate_series returns ops/second; invert into seconds per call band
            rows = [[f"{c:.1e}", f"{c / r:.2e}"] for c, r in zip(centers, rates)][::4]
            lines.append(
                format_table(["ops", "seconds"], rows, title=f"  {comp}")
            )
    lines.append("\nFig 6 — fractional copy time on the basic GPU implementation")
    ops = gpu_frac["ops"]
    order = np.argsort(ops)
    sel = order[:: max(1, order.size // 12)]
    rows = [
        [f"{ops[i]:.1e}", gpu_frac["copy"][i], gpu_frac["potrf"][i],
         gpu_frac["trsm"][i] + gpu_frac["syrk"][i]]
        for i in sel
    ]
    lines.append(
        format_table(
            ["ops", "copy frac", "potrf frac", "trsm+syrk frac"], rows,
            float_fmt="{:.2f}",
        )
    )
    save("fig5_fig6_component_times", "\n".join(lines))

    # --- assertions on the paper's observations ------------------------
    # 1. small calls: GPU trsm+syrk slower than CPU; large calls: faster
    def total_kernel_time(recs, small):
        out = 0.0
        for r in recs:
            if (r.total_flops < 1e5) == small:
                out += r.components.get("trsm", 0) + r.components.get("syrk", 0)
        return out

    assert total_kernel_time(gpu_records, small=True) > total_kernel_time(
        cpu_records, small=True
    )
    big_gpu = total_kernel_time(gpu_records, small=False)
    big_cpu = total_kernel_time(cpu_records, small=False)
    assert big_gpu < big_cpu

    # 2. copy fraction fades as calls grow: an O(n^2)-bytes /
    # O(n^3)-flops effect that needs paper-scale fronts to be visible
    paper_gpu = suite.paper_records("basic", workloads=("audikw_1",))
    pf = component_fractions(paper_gpu)
    pops = pf["ops"]
    small_mask = pops < np.quantile(pops, 0.3)
    large_mask = pops > np.quantile(pops, 0.98)
    assert pf["copy"][small_mask].mean() > 1.5 * pf["copy"][large_mask].mean()

    benchmark(lambda: component_fractions(gpu_records))
