"""Extension — cluster scaling (the paper's future work, Section VIII).

"We are currently investigating the feasibility of using the
distributed-memory parallel version of WSMP to develop a cluster version
of the solver."  This bench runs that study on the simulated substrate:
the audikw_1 paper-scale workload over 1-8 ranks, CPU-only and
one-GPU-per-rank, with subtree-to-rank mapping and an InfiniBand-class
interconnect.
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import ClusterSpec, simulate_cluster
from repro.policies import make_policy


def test_extension_cluster(suite, model, save, benchmark):
    sf = suite.workload("audikw_1")
    p1 = make_policy("P1")
    hybrid = suite.policy("ideal")

    serial = simulate_cluster(sf, p1, ClusterSpec(1, 0, model=model)).makespan
    rows = []
    results = {}
    for n_ranks in (1, 2, 4, 8):
        cpu = simulate_cluster(sf, p1, ClusterSpec(n_ranks, 0, model=model))
        gpu = simulate_cluster(sf, hybrid, ClusterSpec(n_ranks, 1, model=model))
        results[n_ranks] = (cpu, gpu)
        rows.append(
            [n_ranks,
             cpu.makespan, serial / cpu.makespan, 100 * cpu.utilization(),
             gpu.makespan, serial / gpu.makespan,
             gpu.comm_bytes / 1e9, gpu.comm_messages]
        )
    text = format_table(
        ["ranks", "CPU s", "CPU speedup", "CPU util %",
         "rank+GPU s", "hybrid speedup", "comm GB", "msgs"],
        rows,
        title="Extension — cluster scaling on audikw_1 (paper scale)",
        float_fmt="{:.2f}",
    )
    text += (
        "\nsubtree-to-rank mapping: only subtree-boundary updates cross "
        "the network;\nthe top separators serialize on rank 0 (the "
        "classical scalability limit)."
    )
    save("extension_cluster", text)

    # scaling is monotone, communication grows with ranks, and the
    # hybrid ranks multiply the single-node GPU speedup
    for r in (2, 4, 8):
        cpu_prev, gpu_prev = results[r // 2]
        cpu, gpu = results[r]
        assert cpu.makespan < cpu_prev.makespan
        assert gpu.makespan < gpu_prev.makespan
        assert gpu.comm_bytes >= gpu_prev.comm_bytes
    # 8 hybrid ranks: north of 15x over one CPU core, but sublinear
    # (separator-path bound)
    sp8 = serial / results[8][1].makespan
    assert 12.0 < sp8 < 8 * 6.5
    assert results[8][0].utilization() < 0.9  # Amdahl visibly bites

    benchmark(
        lambda: simulate_cluster(sf, p1, ClusterSpec(2, 0, model=model)).makespan
    )
