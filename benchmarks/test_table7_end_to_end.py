"""Table VII — end-to-end speedups of every policy w.r.t. the single-
thread CPU run, at paper scale.

Columns reproduced: P2 / P3 / P4 / Ideal / Model / Baseline hybrids with
one GPU and no copy optimization; the 4-thread CPU run; and the
copy-optimized runs — for which, as in the paper ("a new model was
learned with these results"), a fresh classifier is trained with the
copy-optimized P4 in the policy set — with 1 and 2 GPUs.

Paper bands asserted:
* P2 ~2.3-2.6x, P3 ~3.9-6.1x, P4 ~3.2-7.3x;
* Ideal 5.4-9.6x; Model within ~2% of Ideal; Model boosts Baseline by
  ~5-10% ("20-60%" on some matrices in the conclusions);
* 4-thread ~2.7-4.3x — the GPU-accelerated serial code is worth a
  multithreaded run on several CPU cores;
* copy-optimized model 5.9-9.9x (1 GPU), 10.7-25.6x (2 GPUs).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.autotune import collect_timing_dataset, sample_mk_cloud, train_cost_sensitive
from repro.policies import ModelHybrid, make_policy
from repro.workload import PAPER_WORKLOADS

PAPER = {
    #            P2    P3    P4   Ideal Model  BH   4-Thr  c1GPU c2GPU
    "audikw_1": (2.50, 5.27, 4.67, 6.82, 6.73, 6.48, 2.96, 7.52, 14.14),
    "kyushu":   (2.64, 6.09, 7.26, 9.62, 9.46, 8.68, 4.33, 9.87, 25.64),
    "lmco":     (2.33, 4.21, 3.72, 5.51, 5.45, 4.94, 2.74, 6.06, 10.69),
    "nastran-b":(2.31, 3.94, 3.20, 5.38, 5.32, 4.98, 2.68, 5.89, 10.68),
    "sgi_1M":   (2.54, 5.26, 4.53, 6.62, 6.55, 6.26, 3.57, 7.34, 14.06),
}


def copy_optimized_model(model):
    """Retrain the classifier with the copy-optimized P4 (paper VI-C)."""
    m, k = sample_mk_cloud(400, seed=3)
    ds = collect_timing_dataset(
        m, k, model, policies=("P1", "P2", "P3", "P4c"), noise=0.05,
        repetitions=2, seed=3,
    )
    clf = train_cost_sensitive(ds)
    table = {name: make_policy(name) for name in ("P1", "P2", "P3", "P4c")}
    return ModelHybrid(clf, policies=table)


def test_table7_end_to_end(suite, model, save, benchmark):
    mh_copyopt = copy_optimized_model(model)
    rows = []
    measured = {}
    for spec in PAPER_WORKLOADS:
        w = spec.name
        serial = suite.schedule(w, "P1", 1, 0).makespan
        sp = {}
        for pol in ("P2", "P3", "P4", "ideal", "model", "baseline"):
            sp[pol] = serial / suite.schedule(w, pol, 1, 1).makespan
        sp["4thread"] = serial / suite.schedule(w, "P1", 4, 0).makespan
        # copy-optimized model hybrid, 1 and 2 GPUs
        from repro.parallel import list_schedule, make_worker_pool

        t1 = list_schedule(
            suite.workload(w), mh_copyopt, make_worker_pool(1, 1, model=model),
            gang_threshold=np.inf,
        ).makespan
        t2 = list_schedule(
            suite.workload(w), mh_copyopt, make_worker_pool(2, 2, model=model),
            gang_threshold=5e9,
        ).makespan
        sp["copyopt_1gpu"] = serial / t1
        sp["copyopt_2gpu"] = serial / t2
        measured[w] = sp
        p = PAPER[spec.paper_name]
        rows.append(
            [w, sp["P2"], sp["P3"], sp["P4"], sp["ideal"], sp["model"],
             sp["baseline"], sp["4thread"], sp["copyopt_1gpu"],
             sp["copyopt_2gpu"]]
        )
        rows.append(
            ["  (paper)", p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7], p[8]]
        )
    text = format_table(
        ["matrix", "P2", "P3", "P4", "Ideal", "Model", "Baseline",
         "4-Thread", "c/o 1GPU", "c/o 2GPU"],
        rows,
        title="Table VII — speedup of policies w.r.t. single-thread CPU",
        float_fmt="{:.2f}",
    )
    boosts = [
        100 * (measured[s.name]["model"] / measured[s.name]["baseline"] - 1)
        for s in PAPER_WORKLOADS
    ]
    gaps = [
        100 * (1 - measured[s.name]["model"] / measured[s.name]["ideal"])
        for s in PAPER_WORKLOADS
    ]
    text += (
        f"\nmodel vs baseline boost: {min(boosts):.1f}%..{max(boosts):.1f}% "
        "(paper: 5-10%)"
        f"\nmodel gap to ideal: {min(gaps):.1f}%..{max(gaps):.1f}% (paper: ~2%)"
    )
    save("table7_end_to_end", text)

    for spec in PAPER_WORKLOADS:
        sp = measured[spec.name]
        # --- paper bands ------------------------------------------------
        assert 1.7 < sp["P2"] < 3.5
        assert 3.0 < sp["P3"] < 8.0
        assert 2.5 < sp["P4"] < 9.0
        assert 4.0 < sp["ideal"] < 11.0
        # hybrids beat every static policy; ideal tops everything
        assert sp["ideal"] >= max(sp["P2"], sp["P3"], sp["P4"]) - 1e-9
        assert sp["model"] >= 0.90 * sp["ideal"]
        assert sp["model"] >= 0.98 * sp["baseline"]
        # GPU-accelerated serial code ~ a few multithreaded CPU cores
        assert 2.0 < sp["4thread"] < 4.5
        assert sp["model"] > sp["4thread"]
        # copy optimization helps; two GPUs help further (paper 10.7-25.6x)
        assert sp["copyopt_1gpu"] >= 0.95 * sp["model"]
        assert sp["copyopt_2gpu"] > 1.4 * sp["copyopt_1gpu"]
        assert 8.0 < sp["copyopt_2gpu"] < 30.0

    benchmark(lambda: suite.schedule("lmco", "baseline", 1, 1).makespan)
