"""Table II — SPD test matrices (order and nonzeros).

The paper's matrices are proprietary 3-D structural problems; ours are
the synthetic analogs documented in DESIGN.md.  The table prints both so
the ~100x scale-down is explicit.  The benchmark times construction of
the largest analog.
"""

from repro.analysis import format_table
from repro.matrices import TEST_MATRICES


def test_table2_matrices(save, suite, benchmark):
    rows = []
    for spec in TEST_MATRICES:
        a = suite.matrix(spec.name)
        rows.append(
            [spec.name, spec.paper_name, a.n_rows, a.nnz,
             spec.paper_n, spec.paper_nnz]
        )
    text = format_table(
        ["analog", "paper matrix", "N", "NNZ", "paper N", "paper NNZ"],
        rows,
        title="Table II — SPD test matrices (synthetic analogs vs paper)",
    )
    save("table2_matrices", text)

    for spec in TEST_MATRICES:
        a = suite.matrix(spec.name)
        # all analogs sparse, symmetric, thousands of rows
        assert a.n_rows > 3500
        assert a.nnz < a.n_rows**2 * 0.02
        assert a.is_structurally_symmetric()
    # relative ordering of problem sizes mirrors the paper: the scalar
    # Laplacian analogs (kyushu, sgi) have the largest N but the lowest
    # nnz density, like the originals
    by = {s.name: suite.matrix(s.name) for s in TEST_MATRICES}
    assert by["sgi_s"].n_rows == max(m.n_rows for m in by.values())
    assert (by["kyushu_s"].nnz / by["kyushu_s"].n_rows) == min(
        m.nnz / m.n_rows for m in by.values()
    )

    spec = TEST_MATRICES[-1]
    benchmark(spec.builder)
