"""Ablation — high-water-mark pinned/device memory pooling (V-A2) vs
per-call allocation.

Paper: "each call to allocate a chunk in pinned memory is prohibitively
expensive when the data ... is not large enough ... the supernodes are
typically small and frequent allocation calls degrade the overall
performance", hence allocation only "when the maximum allocated size
over all the previous calls is insufficient".  We replay the kyushu
workload under P3 with both allocators.
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu import SimulatedNode
from repro.multifrontal.numeric import replay_factorize
from repro.policies import make_policy


def run(suite, model, pooling: bool):
    node = SimulatedNode(model=model, n_cpus=1, n_gpus=1, pinned_pooling=pooling)
    r = replay_factorize(suite.workload("kyushu"), make_policy("P3"), node=node)
    gpu = node.gpus[0]
    return r.makespan, gpu.pinned_pool.stats, gpu.device_pool.stats


def test_ablation_pinned_pool(suite, model, save, benchmark):
    t_pool, pstats_pool, _ = run(suite, model, pooling=True)
    t_naive, pstats_naive, _ = run(suite, model, pooling=False)
    rows = [
        ["high-water-mark pool", t_pool, pstats_pool.n_growths,
         pstats_pool.alloc_seconds],
        ["per-call allocation", t_naive, pstats_naive.n_growths,
         pstats_naive.alloc_seconds],
    ]
    text = format_table(
        ["allocator", "makespan (s)", "allocations", "alloc seconds"],
        rows,
        title="Ablation — pinned/device allocation policy (kyushu, P3)",
        float_fmt="{:.3f}",
    )
    text += f"\nslowdown without pooling: {t_naive / t_pool:.2f}x"
    save("ablation_pinned_pool", text)

    # pooling: a handful of growths; naive: one allocation per call
    assert pstats_pool.n_growths < 100
    assert pstats_naive.n_growths > 1000
    assert pstats_naive.alloc_seconds > 10 * pstats_pool.alloc_seconds
    assert t_naive > 1.05 * t_pool

    benchmark(lambda: run(suite, model, pooling=True)[0])
