"""Figure 13 — hybrid policy maps for 0 <= m, k <= 10000 (the full range
of the paper's plots; 500 x 500 bins like the original).

At this extent the paper's maps are dominated by the GPU policies: P4
rules the large-k band (including the m = 0 root line), P3 the bulk,
with P1/P2 confined to the lowest bins.
"""

import numpy as np

from repro.analysis import ascii_policy_map
from repro.policies import BaselineHybrid, IdealHybrid, ModelHybrid

BIN = 500
EXTENT = 10000


def policy_grid(chooser):
    n = EXTENT // BIN
    grid = np.empty((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            m = j * BIN + BIN // 2
            k = i * BIN + BIN // 2
            grid[i, j] = chooser(m, k)
    return grid


def test_fig13_policy_map_large(model, suite, save, benchmark):
    ideal = IdealHybrid(model)
    mh = ModelHybrid(suite.classifier())
    bh = BaselineHybrid()
    g_ideal = policy_grid(ideal.choose)
    g_model = policy_grid(mh.choose)
    g_base = policy_grid(bh.choose)
    text = "\n\n".join(
        [
            ascii_policy_map(g_ideal, title="Fig 13(a) — ideal hybrid (0..10000)"),
            ascii_policy_map(g_model, title="Fig 13(b) — model hybrid"),
            ascii_policy_map(g_base, title="Fig 13(c) — baseline hybrid"),
        ]
    )
    am = float(np.mean(g_model == g_ideal))
    ab = float(np.mean(g_base == g_ideal))
    text += f"\n\nagreement with ideal: model {am:.1%}, baseline {ab:.1%}"
    save("fig13_policy_map_large", text)

    flat = set(g_ideal.ravel().tolist())
    # at this extent every bin is GPU territory
    assert flat <= {"P2", "P3", "P4"}
    assert "P3" in flat and "P4" in flat
    # P4 wins where k is large relative to m (the potrf-heavy band)
    assert g_ideal[-1, 0] == "P4"
    assert g_ideal[0, -1] == "P3"
    assert am >= ab

    benchmark(lambda: policy_grid(bh.choose))
