"""Ablation — the paper's 8-feature map vs a single flop-count feature.

The paper argues simple threshold(s) on the total number of operations
(the approach of Schenk et al. [10], and what the baseline hybrid P_BH
does) cannot capture the policy structure, "which might not be captured
via simple threshold(s) on the total number of operations"; its learned
model leans on shape features (m < 122, k < 19, m/k < 2.6, m/k < 11).
We train the same classifier on (a) the full feature map and (b) total
ops only, and compare regret against the oracle.
"""

from repro.analysis import format_table
from repro.autotune import (
    FeatureMap,
    collect_timing_dataset,
    sample_mk_cloud,
    train_cost_sensitive,
)


def test_ablation_features(model, save, benchmark):
    m, k = sample_mk_cloud(400, seed=21)
    train = collect_timing_dataset(m, k, model, noise=0.05, repetitions=2, seed=21)
    me, ke = sample_mk_cloud(500, seed=210)
    test = collect_timing_dataset(me, ke, model)
    oracle = test.oracle_time()

    full = train_cost_sensitive(train)
    ops_only = train_cost_sensitive(train, feature_map=FeatureMap(names=("ops",)))
    log_ops = train_cost_sensitive(
        train, feature_map=FeatureMap(names=("log_ops",))
    )

    results = {
        "full 8-feature map": full.expected_time(test.m, test.k, test.times),
        "ops only": ops_only.expected_time(test.m, test.k, test.times),
        "log(ops) only": log_ops.expected_time(test.m, test.k, test.times),
    }
    rows = [[name, t, 100 * (t / oracle - 1)] for name, t in results.items()]
    rows.insert(0, ["oracle", oracle, 0.0])
    text = format_table(
        ["feature set", "total seconds", "% over oracle"],
        rows,
        title="Ablation — classifier feature set",
        float_fmt="{:.3f}",
    )
    save("ablation_features", text)

    # the full map beats single-feature thresholds
    assert results["full 8-feature map"] < results["ops only"]
    assert results["full 8-feature map"] < results["log(ops) only"]
    assert results["full 8-feature map"] <= 1.05 * oracle

    benchmark(lambda: full.predict(test.m, test.k))
