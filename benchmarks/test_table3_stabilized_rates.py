"""Table III — average stabilized flop rates and % of peak.

Measured the way the paper measures them: run large kernel invocations,
compute effective rate = nominal flops / time, report the saturated
value and its fraction of the hardware peak (12 GF/s dp for one Xeon
core, 624 GF/s sp for the T10).
"""

import pytest

from repro.analysis import format_table

PAPER = {
    ("cpu", "potrf"): (8.84, 73.7),
    ("cpu", "trsm"): (9.24, 76.99),
    ("cpu", "syrk"): (10.02, 83.49),
    ("gpu", "trsm"): (153.7, 24.63),
    ("gpu", "syrk"): (159.69, 25.59),
}

# large-call shapes at which the rates have stabilized
PROBE = {"potrf": dict(k=6000), "trsm": dict(m=8000, k=4000), "syrk": dict(m=8000, k=4000)}


def measured_rate(model, device, kernel):
    return model.kernel_rate(device, kernel, **PROBE[kernel]) / 1e9


def test_table3_stabilized_rates(model, save, benchmark):
    rows = []
    for (device, kernel), (paper_rate, paper_pct) in PAPER.items():
        got = measured_rate(model, device, kernel)
        pct = model.percent_peak(device, kernel)
        rows.append([f"{device}.{kernel}", got, pct, paper_rate, paper_pct])
    text = format_table(
        ["kernel", "GF/s (ours)", "%peak (ours)", "GF/s (paper)", "%peak (paper)"],
        rows,
        title="Table III — average stabilized flop rates",
        float_fmt="{:.2f}",
    )
    save("table3_stabilized_rates", text)

    for (device, kernel), (paper_rate, paper_pct) in PAPER.items():
        got = measured_rate(model, device, kernel)
        # measured saturated rates within 10% of the paper's values
        assert got == pytest.approx(paper_rate, rel=0.10), (device, kernel)
        assert model.percent_peak(device, kernel) == pytest.approx(
            paper_pct, rel=0.10
        )
    # CPU potrf also probed at the paper's m=0 root sizes (Table V col 2:
    # 8.75-9.44 GF/s)
    for k in (5353, 5418, 5682, 7014, 10592):
        r = model.kernel_rate("cpu", "potrf", k=k) / 1e9
        assert 8.0 < r < 9.5

    benchmark(lambda: [measured_rate(model, d, k) for (d, k) in PAPER])
