"""Section V-A3 remark — tuning CUBLAS tile/thread parameters barely
matters: "we experimented with 17 different configurations ... for syrk
for the matrix kyushu and found that the range of variation was less
than 0.5%".

We sweep the syrk tile size over a plausible set of configurations and
measure the total syrk time of the kyushu workload's call mix under each:
the spread must be small (launch cost and narrow-k efficiency, not tile
choice, govern performance).
"""

from dataclasses import replace

import numpy as np

from repro.analysis import format_table
from repro.gpu.perfmodel import KernelParams


def syrk_total(model, tile, calls):
    p = model.gpu["syrk"]
    tuned = replace(model, gpu_sp={**model.gpu_sp, "syrk": KernelParams(
        launch_latency=p.launch_latency, peak=p.peak,
        narrow_half=p.narrow_half, tile=tile,
    )})
    return sum(tuned.kernel_time("gpu", "syrk", m=m, k=k) for m, k in calls)


def test_remark_tile_tuning(suite, model, save, benchmark):
    sf = suite.workload("kyushu")
    mk = sf.mk_pairs()
    calls = [(int(m), int(k)) for m, k in mk if m > 0]
    tiles = (8, 16, 24, 32, 48, 64)
    totals = {t: syrk_total(model, t, calls) for t in tiles}
    base = totals[32]
    rows = [[t, totals[t], 100 * (totals[t] / base - 1)] for t in tiles]
    text = format_table(
        ["tile", "total syrk seconds", "% vs tile=32"],
        rows,
        title="V-A3 — syrk tile-size sweep on the kyushu call mix",
        float_fmt="{:.3f}",
    )
    text += "\npaper: <0.5% variation over 17 configurations"
    save("remark_tile_tuning", text)

    spread = (max(totals.values()) - min(totals.values())) / base
    # small spread (our tile model charges padding, so a few % rather
    # than the paper's <0.5%, but an order of magnitude below the 2-13x
    # policy effects)
    assert spread < 0.08

    benchmark(lambda: syrk_total(model, 32, calls[:500]))
