"""Figure 14 — speedup of the hybrid policies over the host CPU per
(m, k) bin.

Paper: speedups grow steadily from 1x in the small-call corner (where P1
is optimal) to 12-13x for the largest calls (P3/P4 territory).
"""

import numpy as np

from repro.analysis import ascii_heatmap
from repro.policies import (
    BaselineHybrid,
    IdealHybrid,
    ModelHybrid,
    estimate_policy_time,
    make_policy,
)

BIN = 500
EXTENT = 10000
BASE = {p: make_policy(p) for p in ("P1", "P2", "P3", "P4")}


def speedup_grid(model, chooser):
    n = EXTENT // BIN
    grid = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            m = j * BIN + BIN // 2
            k = i * BIN + BIN // 2
            t1 = estimate_policy_time(BASE["P1"], m, k, model)
            tc = estimate_policy_time(BASE[chooser(m, k)], m, k, model)
            grid[i, j] = t1 / tc
    return grid


def test_fig14_hybrid_speedup_map(model, suite, save, benchmark):
    ideal = IdealHybrid(model)
    mh = ModelHybrid(suite.classifier())
    bh = BaselineHybrid()
    grids = {
        "ideal": speedup_grid(model, ideal.choose),
        "model": speedup_grid(model, mh.choose),
        "baseline": speedup_grid(model, bh.choose),
    }
    text = "\n\n".join(
        ascii_heatmap(
            g, title=f"Fig 14 — speedup over host CPU, {name} hybrid",
            fmt="{:.1f}",
        )
        for name, g in grids.items()
    )
    text += "\n\nmax speedups: " + ", ".join(
        f"{name} {g.max():.1f}x" for name, g in grids.items()
    )
    save("fig14_hybrid_speedup_map", text)

    for name, g in grids.items():
        # speedups never (meaningfully) below 1 for the ideal, and the
        # largest bins reach the paper's 12-13x band
        assert g.max() > 9.0, name
        # thin-k / huge-m band: transfer- and apply-bound, modest speedup
        assert g[0, -1] > 2.0, name
    assert grids["ideal"].min() >= 0.99
    # ideal dominates the other hybrids cell-wise
    assert (grids["ideal"] >= grids["model"] - 1e-9).all()
    assert (grids["ideal"] >= grids["baseline"] - 1e-9).all()

    benchmark(lambda: speedup_grid(model, bh.choose))
