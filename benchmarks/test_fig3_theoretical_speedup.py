"""Figure 3 — theoretical vs observed speedup of the basic GPU implementation.

The paper derives per-call times from Equations 1 and 2,

    T_CPU = N_P/a_P + N_T/a_T + N_S/a_S
    T_GPU = N_P/a_P(cpu) + N_T/a_T(gpu) + N_S/a_S(gpu)
            + N_D(L1,L2)/beta + N_D(L2 L2^T)/beta,

with stabilized rates a and achieved bandwidth beta ~= 1.4 GB/s, and
compares the predicted speedup with observations: predictions are good
for large calls but optimistic for small/moderate ones ("the performance
of the dense kernels for small and moderate matrices is far from the
idealized model").
"""

import numpy as np

from repro.analysis import format_table
from repro.policies import estimate_policy_time, make_policy
from repro.symbolic.symbolic import factor_update_flops


def theoretical_speedup(model, m, k):
    """Eq. 1 / Eq. 2 with asymptotic rates (no latencies)."""
    np_, nt, ns = factor_update_flops(m, k)
    t_cpu = np_ / model.cpu["potrf"].peak + nt / model.cpu["trsm"].peak + ns / model.cpu["syrk"].peak
    beta = 1.4e9
    word = model.gpu_word
    nd_up = (k * k + 2 * m * k) * word
    nd_down = m * m * word
    t_gpu = (
        np_ / model.cpu["potrf"].peak
        + nt / model.gpu["trsm"].peak
        + ns / model.gpu["syrk"].peak
        + nd_up / beta
        + nd_down / beta
    )
    return t_cpu / t_gpu


def observed_speedup(model, m, k):
    t_cpu = estimate_policy_time(make_policy("P1"), m, k, model)
    t_gpu = estimate_policy_time(make_policy("basic"), m, k, model)
    return t_cpu / t_gpu


def test_fig3_theoretical_speedup(model, save, benchmark):
    shapes = [
        (50, 20), (100, 40), (200, 80), (400, 150), (800, 300),
        (1600, 600), (3200, 1200), (6400, 2400), (9000, 4000),
    ]
    rows = []
    for m, k in shapes:
        ops = sum(factor_update_flops(m, k))
        th = theoretical_speedup(model, m, k)
        ob = observed_speedup(model, m, k)
        rows.append([m, k, ops, th, ob, ob / th])
    text = format_table(
        ["m", "k", "total ops", "theoretical", "observed", "obs/theory"],
        rows,
        title="Fig 3 — theoretical vs observed basic-GPU speedup",
        float_fmt="{:.3g}",
    )
    save("fig3_theoretical_speedup", text)

    # paper shape: observed lags theory for small calls, converges for
    # large ones; both climb well past 1x for the biggest calls
    small_ratio = rows[0][5]
    large_ratio = rows[-1][5]
    assert small_ratio < large_ratio
    assert large_ratio > 0.75
    assert rows[-1][4] > 3.0       # large calls see real speedup
    assert rows[0][4] < 1.0        # small calls are slower on the GPU

    benchmark(lambda: [observed_speedup(model, m, k) for m, k in shapes[:4]])
