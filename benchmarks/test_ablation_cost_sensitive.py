"""Ablation — cost-sensitive (Eq. 3) vs conventional 0/1-loss training.

The paper's core ML claim: minimizing expected computation time directly
beats fitting hard best-policy labels, because prediction errors cost
what they cost in seconds.  We train both on the same noisy data and
evaluate total time on a clean held-out set, alongside the oracle and
the static policies.
"""

from repro.analysis import format_table
from repro.autotune import (
    collect_timing_dataset,
    sample_mk_cloud,
    train_cost_sensitive,
    train_cross_entropy,
)


def test_ablation_cost_sensitive(model, save, benchmark):
    m, k = sample_mk_cloud(800, seed=11)
    train = collect_timing_dataset(m, k, model, noise=0.06, repetitions=2, seed=11)
    me, ke = sample_mk_cloud(500, seed=171)
    test = collect_timing_dataset(me, ke, model)

    cs = train_cost_sensitive(train, max_iter=1500)
    ce = train_cross_entropy(train, max_iter=1500)
    oracle = test.oracle_time()
    t_cs = cs.expected_time(test.m, test.k, test.times)
    t_ce = ce.expected_time(test.m, test.k, test.times)

    rows = [
        ["oracle (ideal hybrid)", oracle, 0.0],
        ["cost-sensitive (Eq. 3)", t_cs, 100 * (t_cs / oracle - 1)],
        ["cross-entropy (0/1 loss)", t_ce, 100 * (t_ce / oracle - 1)],
    ]
    for p in test.policies:
        t = test.policy_time(p)
        rows.append([f"always {p}", t, 100 * (t / oracle - 1)])
    text = format_table(
        ["selector", "total seconds", "% over oracle"],
        rows,
        title="Ablation — training objective of the policy classifier",
        float_fmt="{:.3f}",
    )
    save("ablation_cost_sensitive", text)

    # cost-sensitive within a few % of the oracle (paper: ~2%)...
    assert t_cs <= 1.05 * oracle
    # ...and at least as good as the 0/1-loss classifier
    assert t_cs <= 1.01 * t_ce
    # both crush every static policy
    for p in test.policies:
        assert t_cs < test.policy_time(p)

    benchmark(lambda: train_cost_sensitive(train.subsample(120), max_iter=150))
