"""Shared infrastructure for the experiment harness.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index): it computes the rows/series with the
library, prints them, writes them to ``benchmarks/results/<name>.txt``,
asserts the qualitative shape the paper reports, and times a
representative kernel of the experiment through pytest-benchmark.

Two scales are used (see repro.workload):

* **numeric scale** — the real ~20x-down matrices of
  ``repro.matrices.testsuite``; timing via :func:`replay_factorize`
  (identical scheduling to a numeric run), numerics exercised once in
  the validation bench;
* **paper scale** — synthetic geometric ND workloads calibrated to
  Table II's N and Table V's root supernode sizes; timing via the list
  scheduler.

The memoization cache itself lives in :mod:`repro.bench.workloads` so
the ``python -m repro bench`` scenario registry reuses the same
artifacts; this conftest wraps the process-wide instance in session
fixtures.  Within one process, pytest benches and CLI scenarios hit one
cache.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import SuiteCache, shared_suite

__all__ = ["SuiteCache", "save_result"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)


@pytest.fixture(scope="session")
def suite():
    return shared_suite()


@pytest.fixture(scope="session")
def model(suite):
    return suite.model


def save_result(name: str, text: str) -> str:
    """Persist a rendered table/figure under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@pytest.fixture
def save():
    return save_result
