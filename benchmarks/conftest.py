"""Shared infrastructure for the experiment harness.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index): it computes the rows/series with the
library, prints them, writes them to ``benchmarks/results/<name>.txt``,
asserts the qualitative shape the paper reports, and times a
representative kernel of the experiment through pytest-benchmark.

Two scales are used (see repro.workload):

* **numeric scale** — the real ~20x-down matrices of
  ``repro.matrices.testsuite``; timing via :func:`replay_factorize`
  (identical scheduling to a numeric run), numerics exercised once in
  the validation bench;
* **paper scale** — synthetic geometric ND workloads calibrated to
  Table II's N and Table V's root supernode sizes; timing via the list
  scheduler.

Expensive artifacts are memoized per session.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.autotune import train_default_classifier
from repro.gpu import SimulatedNode, tesla_t10_model
from repro.matrices import TEST_MATRICES
from repro.multifrontal import factorize_numeric
from repro.multifrontal.numeric import replay_factorize
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import BaselineHybrid, IdealHybrid, ModelHybrid, make_policy
from repro.symbolic import symbolic_factorize
from repro.workload import PAPER_WORKLOADS, paper_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class SuiteCache:
    """Lazily built, memoized experiment artifacts."""

    model: object = field(default_factory=tesla_t10_model)
    _matrices: dict = field(default_factory=dict)
    _symbolic: dict = field(default_factory=dict)
    _workloads: dict = field(default_factory=dict)
    _replays: dict = field(default_factory=dict)
    _schedules: dict = field(default_factory=dict)
    _factors: dict = field(default_factory=dict)
    _classifier: object = None
    _ideal: object = None

    # ---- numeric-scale artifacts --------------------------------------
    def matrix(self, name: str):
        if name not in self._matrices:
            spec = next(s for s in TEST_MATRICES if s.name == name)
            self._matrices[name] = spec.build()
        return self._matrices[name]

    def symbolic(self, name: str):
        if name not in self._symbolic:
            self._symbolic[name] = symbolic_factorize(
                self.matrix(name), ordering="nd"
            )
        return self._symbolic[name]

    # ---- paper-scale workloads ----------------------------------------
    def workload(self, name: str):
        if name not in self._workloads:
            self._workloads[name] = paper_workload(name)
        return self._workloads[name]

    # ---- policies -------------------------------------------------------
    def classifier(self):
        if self._classifier is None:
            self._classifier = train_default_classifier(self.model)
        return self._classifier

    def ideal(self):
        """One shared IdealHybrid so its (m, k) cache persists."""
        if self._ideal is None:
            self._ideal = IdealHybrid(self.model)
        return self._ideal

    def policy(self, policy_name: str):
        if policy_name == "baseline":
            return BaselineHybrid()
        if policy_name == "ideal":
            return self.ideal()
        if policy_name == "model":
            return ModelHybrid(self.classifier())
        return make_policy(policy_name)

    # ---- timing paths -----------------------------------------------------
    def replay(self, matrix_name: str, policy_name: str):
        """Numeric-scale replay (records + makespan, no numerics)."""
        key = (matrix_name, policy_name)
        if key not in self._replays:
            node = SimulatedNode(model=self.model, n_cpus=1, n_gpus=1)
            self._replays[key] = replay_factorize(
                self.symbolic(matrix_name), self.policy(policy_name), node=node
            )
        return self._replays[key]

    def schedule(self, workload_name: str, policy_name: str,
                 n_cpus: int = 1, n_gpus: int = 1,
                 gang_threshold: float | None = None):
        """Paper-scale schedule via the list scheduler.

        Serial runs disable gang scheduling (one worker can't gang);
        multi-worker runs gang the huge root fronts, mirroring WSMP's
        switch to parallel dense kernels at the top of the tree.
        """
        if gang_threshold is None:
            gang_threshold = np.inf if n_cpus == 1 else 5e9
        key = (workload_name, policy_name, n_cpus, n_gpus, gang_threshold)
        if key not in self._schedules:
            pool = make_worker_pool(n_cpus, n_gpus, model=self.model)
            self._schedules[key] = list_schedule(
                self.workload(workload_name), self.policy(policy_name), pool,
                gang_threshold=gang_threshold,
            )
        return self._schedules[key]

    def factor(self, matrix_name: str, policy_name: str):
        """Real numeric factorization (used sparingly: validation bench)."""
        key = (matrix_name, policy_name)
        if key not in self._factors:
            node = SimulatedNode(model=self.model, n_cpus=1, n_gpus=1)
            self._factors[key] = factorize_numeric(
                self.matrix(matrix_name),
                self.symbolic(matrix_name),
                self.policy(policy_name),
                node=node,
            )
        return self._factors[key]

    def all_records(self, policy_name: str):
        """Concatenated F-U records of the numeric-scale suite (replay)."""
        records = []
        for spec in TEST_MATRICES:
            records.extend(self.replay(spec.name, policy_name).records)
        return records

    def paper_records(self, policy_name: str, workloads=("audikw_1", "kyushu")):
        """Per-call records of paper-scale workloads (isolated per-call
        times from the scheduler)."""
        records = []
        for w in workloads:
            records.extend(
                replay_factorize(
                    self.workload(w), self.policy(policy_name),
                    node=SimulatedNode(model=self.model, n_cpus=1, n_gpus=1),
                ).records
            )
        return records


@pytest.fixture(scope="session")
def suite():
    return SuiteCache()


@pytest.fixture(scope="session")
def model(suite):
    return suite.model


def save_result(name: str, text: str) -> str:
    """Persist a rendered table/figure under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@pytest.fixture
def save():
    return save_result
