"""Section VI-C remark — "One might not observe such speedups for large
2D problems arising in many practical applications."

2-D problems have O(sqrt(n)) separators instead of O(n^(2/3)), so their
frontal matrices stay small and the GPU policies have little to win.
We compare hybrid speedups for a 2-D and a 3-D grid of equal unknown
count at paper scale (geometric workloads: an L x L x 1 "grid" is the
2-D dissection tree).
"""

from repro.analysis import format_table
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import make_policy
from repro.workload import geometric_nd_workload
import numpy as np


def hybrid_speedup(suite, model, sf):
    pol1 = make_policy("P1")
    pool0 = make_worker_pool(1, 0, model=model)
    pool1 = make_worker_pool(1, 1, model=model)
    serial = list_schedule(sf, pol1, pool0, gang_threshold=np.inf).makespan
    hybrid = list_schedule(
        sf, suite.policy("ideal"), pool1, gang_threshold=np.inf
    ).makespan
    return serial / hybrid, serial


def test_remark_2d_vs_3d(suite, model, save, benchmark):
    n_target = 1_000_000
    sf3 = geometric_nd_workload(100, 100, 100)          # 1e6 unknowns, 3-D
    sf2 = geometric_nd_workload(1000, 1000, 1)          # 1e6 unknowns, 2-D
    sp3, t3 = hybrid_speedup(suite, model, sf3)
    sp2, t2 = hybrid_speedup(suite, model, sf2)
    mk3 = sf3.mk_pairs()
    mk2 = sf2.mk_pairs()
    text = format_table(
        ["family", "n", "total flops", "root k", "ideal-hybrid speedup"],
        [
            ["3-D 100^3", sf3.n, sf3.total_flops(), int(mk3[:, 1].max()), sp3],
            ["2-D 1000^2", sf2.n, sf2.total_flops(), int(mk2[:, 1].max()), sp2],
        ],
        title="Remark — 2-D vs 3-D problems of one million unknowns",
        float_fmt="{:.3g}",
    )
    text += (
        "\npaper: 'One might not observe such speedups for large 2D problems'"
    )
    save("remark_2d_vs_3d", text)

    # 2-D separators are ~sqrt-scale: far smaller root fronts, far fewer
    # flops, and a clearly smaller GPU speedup
    assert mk2[:, 1].max() < 0.2 * mk3[:, 1].max()
    assert sf2.total_flops() < 0.1 * sf3.total_flops()
    assert sp3 > 1.5 * sp2
    assert sp3 > 4.0

    benchmark(lambda: geometric_nd_workload(200, 200, 1))
