"""Validation — the timing harness rests on real numerics.

Every other benchmark uses timing replay; this one runs an actual
numeric factorization of a suite matrix under the model hybrid, checks
the factorization residual, the fp32 accuracy signature of the GPU
policies, and the iterative-refinement recovery the paper relies on
(Section III-B), and verifies that replay and numeric timing agree.
"""

import numpy as np

from repro.analysis import format_table
from repro.multifrontal import iterative_refinement


def test_validation_numeric(suite, save, benchmark):
    name = "lmco_s"
    a = suite.matrix(name)
    nf = suite.factor(name, "baseline")       # numeric, hybrid policy
    rp = suite.replay(name, "baseline")       # timing replay

    rng = np.random.default_rng(5)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)
    res = iterative_refinement(a, nf, b, tol=1e-12)
    err_after = float(np.abs(res.x - x_true).max() / np.abs(x_true).max())

    used_gpu = any(r.policy != "P1" for r in nf.records)
    resid = nf.residual_norm(a)

    rows = [
        ["n / nnz", f"{a.n_rows} / {a.nnz}", ""],
        ["GPU policy calls", sum(r.policy != "P1" for r in nf.records),
         f"of {len(nf.records)}"],
        ["||PAP^T - LL^T|| (probe)", f"{resid:.2e}", "fp32-limited"],
        ["initial scaled residual", f"{res.initial_residual:.2e}", ""],
        ["refinement iterations", res.iterations, "paper: 1-2 steps"],
        ["final scaled residual", f"{res.final_residual:.2e}", "< 1e-11"],
        ["forward error after refinement", f"{err_after:.2e}", ""],
        ["numeric makespan (s)", f"{nf.makespan:.4f}", ""],
        ["replay makespan (s)", f"{rp.makespan:.4f}", "must match"],
    ]
    text = format_table(
        ["quantity", "value", "note"],
        rows,
        title=f"Validation — numeric factorization of {name} (model hybrid)",
    )
    save("validation_numeric", text)

    assert used_gpu, "hybrid must actually offload on this problem"
    assert 1e-12 < resid < 1e-4          # real fp32 error, nothing worse
    assert res.final_residual < 1e-11
    assert res.iterations <= 3
    assert err_after < 1e-9
    # replay is the same scheduling code path: makespans agree closely
    assert abs(rp.makespan - nf.makespan) / nf.makespan < 0.02

    benchmark(lambda: iterative_refinement(a, nf, b, tol=1e-12).iterations)
