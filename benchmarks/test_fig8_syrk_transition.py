"""Figure 8 — syrk flop rate by variant and its transition points.

Paper: without copy costs the GPU overtakes the CPU at ~1.5e5 ops; with
copy costs there is a broad 1e6-1e7 band with "no clear winner" (the
crossover depends on the call's aspect ratio), and the decisive
transition sits much later — which is why optimizing copies matters for
moderate calls.  The rate curves are jagged because CUBLAS pads to data
tiles.
"""

import numpy as np

from repro.analysis import format_table


def times(model, m, k):
    t_cpu = model.kernel_time("cpu", "syrk", m=m, k=k)
    t_gpu = model.kernel_time("gpu", "syrk", m=m, k=k)
    word = model.gpu_word
    # L2 up; W = L2 L2^T down (paper: only W matters, L1/L2 negligible)
    copy = model.transfer_time(m * k * word, pinned=False) + model.transfer_time(
        m * m * word, pinned=False
    )
    return t_cpu, t_gpu + copy, t_gpu


def crossover(model, with_copy, aspect):
    for k in np.unique(np.logspace(0.7, 3.6, 300).astype(int)):
        m = max(1, int(aspect * k))
        t_cpu, t_wc, t_nc = times(model, m, k)
        if (t_wc if with_copy else t_nc) < t_cpu:
            return m * m * k
    return np.inf


def test_fig8_syrk_transition(model, save, benchmark):
    rows = []
    for k in (16, 32, 64, 128, 256, 512, 1024):
        m = 3 * k
        ops = m * m * k
        t_cpu, t_wc, t_nc = times(model, m, k)
        rows.append(
            [f"{ops:.2e}", ops / t_cpu / 1e9, ops / t_wc / 1e9, ops / t_nc / 1e9]
        )
    x_nc = crossover(model, with_copy=False, aspect=3.0)
    # with copies the crossover smears with aspect ratio: report the band
    xs_wc = [crossover(model, with_copy=True, aspect=a) for a in (0.5, 1, 2, 4, 8)]
    text = format_table(
        ["ops", "CPU GF/s", "GPU w/ copy GF/s", "GPU w/o copy GF/s"],
        rows,
        title="Fig 8 — syrk flop rate by variant",
        float_fmt="{:.2f}",
    )
    text += (
        f"\ntransition: no-copy {x_nc:.2e} ops (paper ~1.5e5); "
        f"with-copy band {min(xs_wc):.2e}..{max(xs_wc):.2e} across aspect "
        "ratios (paper: no clear winner in 1e6-1e7)"
    )
    # jaggedness: nominal rate dips just past a tile boundary
    r_at = lambda mm, kk: (mm * mm * kk) / model.kernel_time("gpu", "syrk", m=mm, k=kk)
    text += f"\njagged: rate(m=512,k=64)={r_at(512,64)/1e9:.1f} vs rate(m=513,k=65)={r_at(513,65)/1e9:.1f} GF/s"
    save("fig8_syrk_transition", text)

    assert 5e4 < x_nc < 6e5
    # the with-copy band overlaps the paper's 1e6-1e7 grey zone
    assert min(xs_wc) < 1e7 and max(xs_wc) > 1e6
    assert min(xs_wc) > x_nc
    assert r_at(513, 65) < r_at(512, 64)

    benchmark(lambda: crossover(model, with_copy=False, aspect=3.0))
