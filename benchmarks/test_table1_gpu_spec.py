"""Table I — GPU specification.

The paper's Table I documents the Tesla T10 configuration the policies
were calibrated against; our reproduction carries the same record as the
simulation's hardware description.  The benchmark times performance-model
construction (the "boot" cost of the simulated node).
"""

from repro.analysis import format_table
from repro.gpu import TESLA_T10, tesla_t10_model


def test_table1_gpu_spec(save, benchmark):
    rows = TESLA_T10.table_rows()
    text = format_table(["field", "value"], rows, title="Table I — GPU specification")
    save("table1_gpu_spec", text)

    # the values the paper prints
    d = dict(rows)
    assert d["Clock (GHz)"] == "1.3"
    assert d["Scalar Cores"].startswith("240")
    assert "102" in d["Memory b/w (GB/s)"]
    assert d["Memory size"] == "4 GB"
    assert d["Local Store (KB)"] == "16 per SM"
    assert TESLA_T10.peak_sp_gflops / TESLA_T10.peak_dp_gflops == 8.0

    benchmark(tesla_t10_model)
