"""Ablation — the fill-reducing ordering behind the whole experiment.

WSMP's ordering gives the paper its large root fronts.  We compare the
implemented orderings head-to-head on a 3-D problem: nested dissection
minimizes fill/flops and produces the big square separator fronts the
GPU policies feed on; RCM (band-oriented) produces long thin fronts;
natural ordering is the catastrophe baseline.
"""

from repro.analysis import format_table
from repro.matrices import grid_laplacian_3d
from repro.ordering.quality import evaluate_ordering


def test_ablation_ordering(save, benchmark):
    a = grid_laplacian_3d(14, 14, 14)
    methods = ("natural", "rcm", "amd", "nd")
    results = {m: evaluate_ordering(a, m) for m in methods}
    text = format_table(
        ["ordering", "nnz(L)", "fill", "flops", "supernodes",
         "max front", "tree height", "mean k"],
        [results[m].summary_row() for m in methods],
        title="Ablation — ordering quality on a 14^3 Laplacian",
    )
    save("ablation_ordering", text)

    nd, amd = results["nd"], results["amd"]
    nat, rcm = results["natural"], results["rcm"]
    # fill-reducing orderings crush the natural ordering
    assert nd.flops < 0.35 * nat.flops
    assert amd.flops < 0.5 * nat.flops
    # ND is the shallow-tree / big-front ordering (parallelism + GPU food)
    assert nd.tree_height <= amd.tree_height
    assert nd.flops <= 1.3 * min(r.flops for r in results.values())
    # every ordering's structure is internally consistent
    for r in results.values():
        assert r.nnz_factor >= a.lower_triangle().nnz
        assert r.max_front >= r.mean_width

    benchmark(lambda: evaluate_ordering(grid_laplacian_3d(8, 8, 8), "nd"))
