"""Table V — blocked GPU potrf at the root supernodes (m = 0).

The Section V-A1 algorithm (Figure 9) factors the root's k x k block
entirely on the GPU in panels.  The paper reports 67.7-124 GF/s versus
~9 GF/s on the CPU — speedups of 7.7-13.1x — rising with k.
"""

import pytest

from repro.analysis import format_table
from repro.dense.blocked import default_panel_width
from repro.gpu import CublasContext
from repro.gpu.cublas import panel_kernel_sequence

PAPER = {
    # k: (cpu GF/s, gpu GF/s, speedup)
    5418: (8.98, 69.60, 7.75),
    10592: (9.44, 123.95, 13.13),
    5353: (8.75, 67.73, 7.74),
    5682: (9.02, 71.71, 7.95),
    7014: (9.18, 80.42, 8.76),
}


def rates(model, k):
    flops = k**3 / 3.0
    t_cpu = model.kernel_time("cpu", "potrf", k=k)
    ctx = CublasContext(model)
    t_gpu = ctx.price(panel_kernel_sequence(k, k, default_panel_width(k)))
    return flops / t_cpu / 1e9, flops / t_gpu / 1e9


def test_table5_gpu_potrf(model, save, benchmark):
    rows = []
    ours = {}
    for k, (p_cpu, p_gpu, p_sp) in sorted(PAPER.items()):
        r_cpu, r_gpu = rates(model, k)
        ours[k] = (r_cpu, r_gpu, r_gpu / r_cpu)
        rows.append([k, r_cpu, r_gpu, r_gpu / r_cpu, p_cpu, p_gpu, p_sp])
    text = format_table(
        ["k (m=0)", "CPU GF/s", "GPU GF/s", "speedup",
         "paper CPU", "paper GPU", "paper spdup"],
        rows,
        title="Table V — blocked GPU potrf at root supernodes",
        float_fmt="{:.2f}",
    )
    save("table5_gpu_potrf", text)

    for k, (r_cpu, r_gpu, sp) in ours.items():
        p_cpu, p_gpu, p_sp = PAPER[k]
        assert r_cpu == pytest.approx(p_cpu, rel=0.10)
        # GPU rate within the paper's band and within 25% per row
        assert 55 < r_gpu < 135
        assert r_gpu == pytest.approx(p_gpu, rel=0.30)
        assert sp == pytest.approx(p_sp, rel=0.35)
    # rising trend with k, max speedup >= ~8 (paper max 13.1)
    ks = sorted(ours)
    assert ours[ks[-1]][1] > ours[ks[0]][1]
    assert max(sp for _, _, sp in ours.values()) > 8.0

    benchmark(lambda: rates(model, 5418))
