"""Figure 12 — ideal / model / baseline hybrid policy maps, 0 <= m,k <= 1000.

Paper observations encoded below:
* low m and k: P1 (host) everywhere,
* moderate k with larger m: P2 (syrk offload),
* large k: P4; the bulk of the large-m region: P3,
* the model map resembles the ideal map far more than the threshold
  baseline does.
"""

import numpy as np

from repro.analysis import ascii_policy_map
from repro.autotune import train_default_classifier
from repro.policies import BaselineHybrid, IdealHybrid, ModelHybrid

BIN = 50
EXTENT = 1000


def policy_grid(chooser):
    n = EXTENT // BIN
    grid = np.empty((n, n), dtype=object)
    for i in range(n):          # k bins (rows)
        for j in range(n):      # m bins (cols)
            m = j * BIN + BIN // 2
            k = i * BIN + BIN // 2
            grid[i, j] = chooser(m, k)
    return grid


def agreement(a, b):
    return float(np.mean(a == b))


def test_fig12_policy_map_small(model, suite, save, benchmark):
    ideal = IdealHybrid(model)
    mh = ModelHybrid(suite.classifier())
    bh = BaselineHybrid()

    g_ideal = policy_grid(ideal.choose)
    g_model = policy_grid(mh.choose)
    g_base = policy_grid(bh.choose)

    text = "\n\n".join(
        [
            ascii_policy_map(g_ideal, title="Fig 12(a) — ideal hybrid (m right, k up; 0..1000)"),
            ascii_policy_map(g_model, title="Fig 12(b) — model hybrid"),
            ascii_policy_map(g_base, title="Fig 12(c) — baseline hybrid"),
        ]
    )
    am = agreement(g_model, g_ideal)
    ab = agreement(g_base, g_ideal)
    text += f"\n\nagreement with ideal: model {am:.1%}, baseline {ab:.1%}"
    save("fig12_policy_map_small", text)

    # corner structure of the ideal map
    assert g_ideal[0, 0] == "P1"            # small m, small k
    assert g_ideal[-1, 0] in ("P4",)        # m small, k large: all-GPU
    assert "P3" in set(g_ideal[5:, 10:].ravel().tolist())
    # model tracks ideal better than the flop-threshold baseline
    assert am > ab
    assert am > 0.6

    benchmark(lambda: policy_grid(bh.choose))
