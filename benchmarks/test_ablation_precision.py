"""Extension — double-precision GPU policies (the paper's adaptability
claim).

"[The decision model] should be possible to readily adapt ... for
instance, one corresponding to a double-precision implementation" — and
the conclusion notes the CPU-equivalence point "depends on the GPU
architecture and the precision of the computation".  The T10's dp peak
is 8x below sp; we switch the performance model to dp, retrain the
classifier, and show (a) the pipeline adapts unchanged and (b) the
speedups shrink accordingly.
"""

import numpy as np

from repro.analysis import format_table
from repro.autotune import collect_timing_dataset, sample_mk_cloud, train_cost_sensitive
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import IdealHybrid, ModelHybrid, make_policy


def end_to_end_speedup(sf, policy, model):
    serial = list_schedule(
        sf, make_policy("P1"), make_worker_pool(1, 0, model=model),
        gang_threshold=np.inf,
    ).makespan
    hybrid = list_schedule(
        sf, policy, make_worker_pool(1, 1, model=model), gang_threshold=np.inf
    ).makespan
    return serial / hybrid


def test_ablation_precision(suite, model, save, benchmark):
    sf = suite.workload("audikw_1")
    dp_model = model.with_precision("dp")

    sp_speedup = end_to_end_speedup(sf, IdealHybrid(model), model)
    dp_speedup = end_to_end_speedup(sf, IdealHybrid(dp_model), dp_model)

    # the auto-tuning loop retrains unchanged on the dp timing data
    m, k = sample_mk_cloud(300, seed=31)
    ds = collect_timing_dataset(m, k, dp_model, noise=0.05, seed=31)
    clf = train_cost_sensitive(ds)
    dp_model_speedup = end_to_end_speedup(
        sf, ModelHybrid(clf), dp_model
    )

    rows = [
        ["single (paper's mode)", sp_speedup, "ideal"],
        ["double, ideal", dp_speedup, "ideal"],
        ["double, retrained model", dp_model_speedup, "model"],
    ]
    text = format_table(
        ["precision", "hybrid speedup (audikw_1)", "selector"],
        rows,
        title="Extension — double-precision GPU kernels",
        float_fmt="{:.2f}",
    )
    text += (
        "\nT10 dp peak is 8x below sp; speedups shrink but the hybrid "
        "still beats the host (the Fermi remark in the paper's footnote)"
    )
    save("ablation_precision", text)

    assert dp_speedup < 0.7 * sp_speedup      # dp clearly slower
    assert dp_speedup > 1.2                   # but still worthwhile
    assert dp_model_speedup > 0.85 * dp_speedup  # retrained model adapts

    benchmark(lambda: collect_timing_dataset(
        np.array([500]), np.array([200]), dp_model
    ))
