"""Figure 4 — observed flop rate for large trsm/syrk calls, CPU vs GPU.

Rates ramp with operation count (launch latency amortizes) and saturate
at the stabilized values of Table III; GPU curves sit ~15x above the CPU
ones at saturation.
"""

import numpy as np

from repro.analysis import format_table


def series(model, device, kernel, aspect=4.0):
    rows = []
    for k in (16, 32, 64, 128, 256, 512, 1024, 2048, 4096):
        m = int(k * aspect)
        ops = m * k * k if kernel == "trsm" else m * m * k
        rate = model.kernel_rate(device, kernel, m=m, k=k)
        rows.append((ops, rate))
    return rows


def test_fig4_flop_rates(model, save, benchmark):
    lines = ["Fig 4 — observed flop rate (GF/s) vs number of operations"]
    data = {}
    for device in ("cpu", "gpu"):
        for kernel in ("trsm", "syrk"):
            data[(device, kernel)] = series(model, device, kernel)
            rows = [[f"{o:.2e}", r / 1e9] for o, r in data[(device, kernel)]]
            lines.append("")
            lines.append(
                format_table(
                    ["ops", "GF/s"], rows, title=f"{kernel}-{device.upper()}",
                    float_fmt="{:.2f}",
                )
            )
    save("fig4_flop_rates", "\n".join(lines))

    for (device, kernel), rows in data.items():
        rates = [r for _, r in rows]
        # monotone ramp to saturation
        assert all(b >= a * 0.99 for a, b in zip(rates, rates[1:])), (device, kernel)
        peak = model.cpu[kernel].peak if device == "cpu" else model.gpu[kernel].peak
        assert rates[-1] > 0.85 * peak
    # the paper's crossing structure: GPU slower than CPU for the
    # smallest calls, ~15x faster at saturation
    assert data[("gpu", "syrk")][0][1] < data[("cpu", "syrk")][0][1]
    assert data[("gpu", "syrk")][-1][1] > 12 * data[("cpu", "syrk")][-1][1]
    assert data[("gpu", "trsm")][-1][1] > 12 * data[("cpu", "trsm")][-1][1]

    benchmark(lambda: series(model, "gpu", "syrk"))
