"""Extension — should the triangular solves be offloaded too?

The paper keeps the solve phase on the host.  This bench justifies that
choice quantitatively and maps where it flips: the solves are
bandwidth-bound (4 flops per factor entry), so a cold GPU solve loses
to the host for one right-hand side, while (a) device-resident factor
panels or (b) many simultaneous right-hand sides flip the decision —
the "multiple systems with the same coefficient matrix" scenario the
introduction motivates direct methods with.
"""

from repro.analysis import format_table
from repro.multifrontal.solve_sim import simulate_solve


def test_extension_solve_phase(suite, model, save, benchmark):
    sf = suite.workload("kyushu")
    rows = []
    crossover = None
    for nrhs in (1, 4, 16, 64, 256):
        cpu = simulate_solve(sf, model, nrhs=nrhs, device="cpu")
        gpu = simulate_solve(sf, model, nrhs=nrhs, device="gpu")
        gpu_res = simulate_solve(
            sf, model, nrhs=nrhs, device="gpu", panels_resident=True
        )
        if crossover is None and gpu.seconds < cpu.seconds:
            crossover = nrhs
        rows.append(
            [nrhs, cpu.seconds, gpu.seconds, gpu_res.seconds,
             cpu.seconds / gpu_res.seconds]
        )
    text = format_table(
        ["nrhs", "CPU s", "GPU (cold) s", "GPU (resident) s",
         "resident speedup"],
        rows,
        title="Extension — solve-phase placement (kyushu, paper scale)",
        float_fmt="{:.3f}",
    )
    text += (
        f"\ncold-GPU crossover at nrhs ~ {crossover}; single-RHS cold GPU "
        "loses — the paper's host-side solve is the right default."
    )
    save("extension_solve_phase", text)

    # single RHS: host wins against a cold GPU
    assert rows[0][1] < rows[0][2]
    # residency always helps the GPU
    for r in rows:
        assert r[3] <= r[2]
    # many RHS: GPU wins even cold
    assert rows[-1][2] < rows[-1][1]
    assert crossover is not None and crossover <= 256

    benchmark(lambda: simulate_solve(sf, model, nrhs=16, device="gpu").seconds)
