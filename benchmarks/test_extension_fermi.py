"""Extension — the Fermi footnote, instantiated.

Paper, footnote 1: "The latest Fermi offering from Nvidia is expected to
improve double precision performance significantly."  And the
conclusion: "The exact point of equivalence depends on the GPU
architecture and the precision of the computation."

We run the whole pipeline — performance model, retrained classifier,
end-to-end hybrid — on a Fermi-class (C2050) model whose dp:sp ratio is
1:2 instead of the T10's 1:8, and check the predictions:

* full double-precision GPU factorization becomes genuinely attractive
  (no mixed-precision compromise, no iterative-refinement requirement),
* dp-on-Fermi beats sp-on-T10's *dp-equivalent* path and approaches its
  sp speedups,
* the auto-tuning loop ports with zero code changes (the paper's
  portability claim).
"""

from repro.analysis import format_table
from repro.autotune import collect_timing_dataset, sample_mk_cloud, train_cost_sensitive
from repro.gpu import fermi_c2050_model, tesla_t10_model
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import IdealHybrid, ModelHybrid, make_policy
import numpy as np


def speedup(sf, policy, model):
    serial = list_schedule(
        sf, make_policy("P1"), make_worker_pool(1, 0, model=model),
        gang_threshold=np.inf,
    ).makespan
    hybrid = list_schedule(
        sf, policy, make_worker_pool(1, 1, model=model), gang_threshold=np.inf
    ).makespan
    return serial / hybrid


def test_extension_fermi(suite, save, benchmark):
    sf = suite.workload("audikw_1")
    t10 = tesla_t10_model()
    fermi = fermi_c2050_model()

    configs = {
        "T10 sp (the paper)": (t10, "sp"),
        "T10 dp": (t10.with_precision("dp"), "dp"),
        "Fermi sp": (fermi, "sp"),
        "Fermi dp (the footnote)": (fermi.with_precision("dp"), "dp"),
    }
    rows = []
    results = {}
    for label, (model, prec) in configs.items():
        sp_ideal = speedup(sf, IdealHybrid(model), model)
        # retrain the classifier against this hardware — the portability loop
        m, k = sample_mk_cloud(250, seed=41)
        ds = collect_timing_dataset(m, k, model, noise=0.05, seed=41)
        clf = train_cost_sensitive(ds, max_iter=400)
        sp_model = speedup(sf, ModelHybrid(clf), model)
        results[label] = (sp_ideal, sp_model)
        rows.append([label, prec, sp_ideal, sp_model])
    text = format_table(
        ["configuration", "precision", "ideal-hybrid speedup",
         "retrained-model speedup"],
        rows,
        title="Extension — Fermi-class hardware (audikw_1, paper scale)",
        float_fmt="{:.2f}",
    )
    text += (
        "\nFermi's 1:2 dp:sp ratio makes native double precision viable — "
        "no fp32 compromise,\nno refinement requirement — as the paper's "
        "footnote anticipated."
    )
    save("extension_fermi", text)

    # the footnote's predictions
    assert results["Fermi dp (the footnote)"][0] > 2.5 * results["T10 dp"][0]
    assert results["Fermi dp (the footnote)"][0] > 0.6 * results["T10 sp (the paper)"][0]
    assert results["Fermi sp"][0] > results["T10 sp (the paper)"][0]
    # the retrained model tracks the ideal on every configuration
    for label, (ideal, modeled) in results.items():
        assert modeled >= 0.85 * ideal, label

    benchmark(lambda: speedup(sf, IdealHybrid(fermi), fermi))
