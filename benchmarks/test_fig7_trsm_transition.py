"""Figure 7 — trsm flop rate: CPU vs GPU-with-copy vs GPU-without-copy,
and the CPU->GPU transition points.

Paper: the tipping point above which the GPU wins is ~4e5 operations
without copy costs and ~3e6 with them (synchronous copies included).
"""

import numpy as np

from repro.analysis import format_table


def times(model, m, k):
    """(cpu, gpu_with_copy, gpu_no_copy) seconds for one trsm of (m, k)."""
    t_cpu = model.kernel_time("cpu", "trsm", m=m, k=k)
    t_gpu = model.kernel_time("gpu", "trsm", m=m, k=k)
    word = model.gpu_word
    # paper accounting: copy L1 and L2 up, L2 back
    copy = (
        model.transfer_time(k * k * word, pinned=False)
        + model.transfer_time(m * k * word, pinned=False)
        + model.transfer_time(m * k * word, pinned=False)
    )
    return t_cpu, t_gpu + copy, t_gpu


def crossover(model, with_copy, aspect=0.4):
    """Smallest ops count (log sweep, m = aspect*k shapes) where GPU wins."""
    for k in np.unique(np.logspace(1, 3.6, 200).astype(int)):
        m = max(1, int(aspect * k))
        t_cpu, t_wc, t_nc = times(model, m, k)
        t_gpu = t_wc if with_copy else t_nc
        if t_gpu < t_cpu:
            return m * k * k
    return np.inf


def test_fig7_trsm_transition(model, save, benchmark):
    rows = []
    for k in (32, 64, 128, 256, 512, 1024, 2048):
        m = int(0.4 * k)
        ops = m * k * k
        t_cpu, t_wc, t_nc = times(model, m, k)
        rows.append(
            [f"{ops:.2e}", ops / t_cpu / 1e9, ops / t_wc / 1e9, ops / t_nc / 1e9]
        )
    x_nc = crossover(model, with_copy=False)
    x_wc = crossover(model, with_copy=True)
    text = format_table(
        ["ops", "CPU GF/s", "GPU w/ copy GF/s", "GPU w/o copy GF/s"],
        rows,
        title="Fig 7 — trsm flop rate by variant",
        float_fmt="{:.2f}",
    )
    text += (
        f"\ntransition points: no-copy {x_nc:.2e} ops (paper ~4e5), "
        f"with-copy {x_wc:.2e} ops (paper ~3e6)"
    )
    save("fig7_trsm_transition", text)

    # the paper's transition points, within a factor of ~3
    assert 1.3e5 < x_nc < 1.2e6
    assert 1e6 < x_wc < 9e6
    assert x_wc > x_nc

    benchmark(lambda: crossover(model, with_copy=True))
