"""Ablation — Section V-A2 copy/compute overlap on vs off.

P3's two overlaps (H2D of the unsolved panel under the host potrf; D2H
of the solved panel under the device syrk) plus pinned buffers are what
separate the tuned P3 from the basic implementation.  We price both
variants per call and over the audikw workload.
"""

import numpy as np

from repro.analysis import format_table
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import estimate_policy_time, make_policy
from repro.policies.base import PolicyP3


def test_ablation_overlap(suite, model, save, benchmark):
    p3 = make_policy("P3")
    p3_basic = PolicyP3(overlap=False, pinned=False)
    p3_sync_pinned = PolicyP3(overlap=False, pinned=True)

    rows = []
    for m, k in [(120, 50), (500, 200), (2000, 800), (8000, 3000)]:
        t_over = estimate_policy_time(p3, m, k, model)
        t_pin = estimate_policy_time(p3_sync_pinned, m, k, model)
        t_basic = estimate_policy_time(p3_basic, m, k, model)
        rows.append([m, k, t_over, t_pin, t_basic, t_basic / t_over])
    per_call = format_table(
        ["m", "k", "overlap+pinned", "sync+pinned", "sync+pageable",
         "basic/overlap"],
        rows,
        title="Ablation — P3 copy handling, per call (seconds)",
        float_fmt="{:.4g}",
    )

    sf = suite.workload("audikw_1")
    pool = make_worker_pool(1, 1, model=model)
    t_over = list_schedule(sf, p3, pool, gang_threshold=np.inf).makespan
    t_basic = list_schedule(sf, p3_basic, pool, gang_threshold=np.inf).makespan
    text = per_call + (
        f"\n\naudikw_1 end-to-end: overlapped {t_over:.1f}s vs basic "
        f"{t_basic:.1f}s ({100 * (t_basic / t_over - 1):.1f}% slower without "
        "the V-A2 optimizations)"
    )
    save("ablation_overlap", text)

    # overlap+pinned dominates per call and end to end
    for _, _, t_o, t_p, t_b, _ in rows:
        assert t_o <= t_p <= t_b * 1.001
    assert t_over < t_basic
    assert t_basic / t_over > 1.05

    benchmark(lambda: estimate_policy_time(p3, 2000, 800, model))
