#!/usr/bin/env python
"""Cluster scaling — the paper's future-work system, running.

Distributes a paper-scale factorization over a simulated cluster (one
MPI-style rank per node, one GPU per rank, InfiniBand-class network)
with subtree-to-rank mapping, and prints the scaling curve with
communication volume — the study the paper's conclusion announces.

Run:  python examples/cluster_scaling.py
"""

from repro.analysis import format_table
from repro.cluster import ClusterSpec, InterconnectParams, simulate_cluster
from repro.gpu import tesla_t10_model
from repro.policies import IdealHybrid, make_policy
from repro.workload import paper_workload


def main() -> None:
    model = tesla_t10_model()
    sf = paper_workload("sgi_1M")
    print(
        f"workload: sgi_1M geometry, n={sf.n}, "
        f"{sf.n_supernodes} supernodes, {sf.total_flops():.3g} flops"
    )

    p1 = make_policy("P1")
    hybrid = IdealHybrid(model)
    serial = simulate_cluster(sf, p1, ClusterSpec(1, 0, model=model)).makespan
    print(f"serial host: {serial:.1f} simulated seconds\n")

    rows = []
    for n_ranks in (1, 2, 4, 8, 16):
        res = simulate_cluster(
            sf, hybrid, ClusterSpec(n_ranks, 1, model=model)
        )
        rows.append(
            [n_ranks, res.makespan, serial / res.makespan,
             100 * res.utilization(), res.comm_bytes / 1e9,
             res.comm_messages]
        )
    print(format_table(
        ["ranks (1 GPU each)", "makespan s", "speedup", "util %",
         "comm GB", "messages"],
        rows, title="Hybrid cluster scaling", float_fmt="{:.2f}",
    ))

    # how much does the network matter?
    print("\nnetwork sensitivity (8 ranks):")
    for label, bw in (("IB-DDR 1.5 GB/s", 1.5e9), ("GigE 0.1 GB/s", 1e8)):
        res = simulate_cluster(
            sf, hybrid,
            ClusterSpec(8, 1, model=model,
                        interconnect=InterconnectParams(bandwidth=bw)),
        )
        print(f"  {label}: {serial / res.makespan:.1f}x "
              f"({res.comm_seconds:.1f}s on the wire)")
    print(
        "\nThe top separators serialize on one rank — the classical\n"
        "multifrontal scalability limit the distributed WSMP papers attack\n"
        "with 2-D front distribution."
    )


if __name__ == "__main__":
    main()
