#!/usr/bin/env python
"""The auto-tuning loop — train a cost-sensitive policy classifier.

Reproduces the paper's Section VI pipeline end to end:

1. sample factor-update calls (m, k) and *measure* them under each of
   the four policies on the simulated node (with measurement noise),
2. fit the multinomial-logistic classifier by directly minimizing the
   expected computation time (Eq. 3), warm-started from the conventional
   0/1-loss fit,
3. compare the learned selector against the oracle, the flop-threshold
   baseline, and each static policy,
4. print the learned policy map (the paper's Figure 12).

Run:  python examples/autotune_policies.py
"""

import numpy as np

from repro.analysis import ascii_policy_map, format_table
from repro.autotune import (
    collect_timing_dataset,
    sample_mk_cloud,
    train_cost_sensitive,
    train_cross_entropy,
)
from repro.gpu import tesla_t10_model
from repro.policies import BaselineHybrid


def main() -> None:
    model = tesla_t10_model()

    # 1. empirical timing data (noisy, two repetitions per call)
    m, k = sample_mk_cloud(500, seed=7)
    train = collect_timing_dataset(m, k, model, noise=0.05, repetitions=2, seed=7)
    print(f"training data: {train.n} observations x {len(train.policies)} policies")

    # 2. fit both objectives
    cs = train_cost_sensitive(train)
    ce = train_cross_entropy(train)

    # 3. held-out evaluation
    me, ke = sample_mk_cloud(600, seed=70)
    test = collect_timing_dataset(me, ke, model)
    oracle = test.oracle_time()
    bh = BaselineHybrid()
    idx = {p: i for i, p in enumerate(test.policies)}
    t_bh = sum(
        test.times[i, idx[bh.choose(int(test.m[i]), int(test.k[i]))]]
        for i in range(test.n)
    )
    rows = [
        ["oracle (ideal hybrid)", oracle, 0.0],
        ["cost-sensitive model", cs.expected_time(test.m, test.k, test.times),
         None],
        ["0/1-loss model", ce.expected_time(test.m, test.k, test.times), None],
        ["flop-threshold baseline", t_bh, None],
    ] + [[f"always {p}", test.policy_time(p), None] for p in test.policies]
    for row in rows:
        row[2] = 100.0 * (row[1] / oracle - 1.0)
    print(format_table(
        ["selector", "total seconds", "% over oracle"],
        rows, title="\nHeld-out policy-selection quality", float_fmt="{:.2f}",
    ))

    # 4. the learned decision map (paper Fig. 12)
    n = 20
    grid = np.empty((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            grid[i, j] = cs.predict_one(j * 50 + 25, i * 50 + 25)
    print()
    print(ascii_policy_map(
        grid, title="Learned policy map, 0 <= m, k <= 1000 (m right, k up)"
    ))


if __name__ == "__main__":
    main()
