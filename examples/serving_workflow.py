#!/usr/bin/env python
"""Serving workflow — the factorization cache under a repeated stream.

Simulates the workload the serving layer is built for: a client that
repeatedly solves systems whose sparsity pattern recurs (time stepping,
parameter sweeps, Newton iterations).  A :class:`SolverService` is fed a
stream drawn from a handful of patterns, each with a few numeric-value
variants; the pattern-keyed cache turns most requests into symbolic-tier
hits (skip ordering + analysis) or full numeric hits (straight to the
triangular solves), and same-factor requests that queue up together are
solved as one blocked multi-RHS call.

Prints the cache hit rates, batching statistics, and the end-to-end
latency percentiles from the service's metrics.

Run:  python examples/serving_workflow.py
"""

import numpy as np

from repro.analysis import format_table
from repro.matrices import grid_laplacian_2d
from repro.service import SolverService


def main() -> None:
    rng = np.random.default_rng(7)

    # 3 recurring sparsity patterns x 3 value variants each
    patterns = [grid_laplacian_2d(10 + 2 * p, 11 + p) for p in range(3)]
    variants = [
        [
            type(a)(a.shape, a.indptr, a.indices,
                    a.data * (1.0 + 0.5 * v), check=False)
            for v in range(3)
        ]
        for a in patterns
    ]

    n_requests = 60
    with SolverService(n_workers=2, policy="P1", ordering="amd") as svc:
        requests = []
        for i in range(n_requests):
            a = variants[i % 3][(i // 3) % 3]
            b = rng.normal(size=a.n_rows)
            requests.append(svc.submit(a, b))
        outcomes = [r.result(timeout=300) for r in requests]

    rep = svc.report()
    lat = rep["latency"]["total"]
    tiers = {t: sum(1 for o in outcomes if o.tier == t)
             for t in ("miss", "symbolic", "numeric", "batched")}
    hit_rate = (n_requests - tiers["miss"]) / n_requests

    rows = [
        ("requests", n_requests),
        ("cold misses (fresh analyses)", tiers["miss"]),
        ("cache hit rate", f"{hit_rate:.1%}"),
        ("numeric factorizations", svc.metrics.counter("numeric_factorizations")),
        ("requests solved in shared batches",
         svc.metrics.counter("batched_requests")),
        ("p50 latency", f"{lat['p50'] * 1e3:.2f} ms"),
        ("p95 latency", f"{lat['p95'] * 1e3:.2f} ms"),
    ]
    print(format_table(["metric", "value"], rows, title="serving workflow"))

    # every solution is checked against a direct residual
    worst = 0.0
    for o, r in zip(outcomes, requests):
        res = r.b - r.canonical.matvec(o.x)
        worst = max(worst, np.abs(res).max() / np.abs(r.b).max())
    print(f"worst relative residual across the stream: {worst:.2e}")
    assert hit_rate >= 0.8, "repeated-pattern stream should mostly hit"


if __name__ == "__main__":
    main()
