#!/usr/bin/env python
"""Quickstart — solve a sparse SPD system with the hybrid solver.

Builds a 3-D Poisson problem, factors it with the baseline hybrid policy
(per-call CPU/GPU placement on the simulated Tesla-T10 node), solves,
and prints the statistics the paper reports: simulated time, effective
flop rate, and which policy handled how many factor-update calls.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparseCholeskySolver, grid_laplacian_3d


def main() -> None:
    # a 16^3 Poisson problem (4096 unknowns)
    a = grid_laplacian_3d(16, 16, 16)
    print(f"matrix: n={a.n_rows}, nnz={a.nnz}")

    solver = SparseCholeskySolver(a, ordering="nd", policy="baseline")
    solver.analyze()
    print(
        f"symbolic: {solver.symbolic.n_supernodes} supernodes, "
        f"nnz(L)={solver.symbolic.nnz_factor}, "
        f"{solver.symbolic.total_flops():.3g} flops"
    )

    solver.factorize()
    stats = solver.stats
    print(
        f"numeric: {stats.simulated_seconds * 1e3:.2f} ms simulated "
        f"({stats.effective_gflops:.2f} GF/s effective)"
    )
    print(f"policy usage: {stats.policy_counts}")

    # solve against a known solution; refinement recovers full fp64
    # accuracy even though GPU-placed kernels computed in fp32
    rng = np.random.default_rng(0)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)
    result = solver.solve_refined(b)
    err = np.abs(result.x - x_true).max() / np.abs(x_true).max()
    print(
        f"solve: {result.iterations} refinement step(s), "
        f"residual {result.final_residual:.2e}, forward error {err:.2e}"
    )


if __name__ == "__main__":
    main()
