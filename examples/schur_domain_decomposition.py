#!/usr/bin/env python
"""Static condensation / Schur complements — a downstream application.

Direct solvers earn their keep in workflows that *reuse* structure.
This example condenses a 3-D problem onto its interface: the interior
is eliminated once with the multifrontal machinery (under the hybrid
CPU-GPU policies), leaving a small dense Schur complement that can be
handed to a dense solver, coupled to another subdomain, or refactored
cheaply while the interior stays fixed.

Run:  python examples/schur_domain_decomposition.py
"""

import numpy as np

from repro import grid_laplacian_3d, symbolic_factorize
from repro.analysis import format_table
from repro.multifrontal import partial_factorize
from repro.multifrontal.schur import solve_with_schur
from repro.policies import BaselineHybrid


def main() -> None:
    a = grid_laplacian_3d(10, 10, 10)
    sf = symbolic_factorize(a, ordering="nd")
    print(f"problem: n={a.n_rows}, {sf.n_supernodes} supernodes")

    rows = []
    for frac in (0.5, 0.8, 0.95):
        pf = partial_factorize(a, sf, BaselineHybrid(), int(frac * sf.n))
        # verify: solve through the condensed system
        rng = np.random.default_rng(1)
        x_true = rng.normal(size=a.n_rows)
        x = solve_with_schur(pf, sf, a.matvec(x_true))
        err = np.abs(x - x_true).max() / np.abs(x_true).max()
        rows.append(
            [f"{frac:.0%}", pf.n_eliminated, pf.schur_order,
             pf.makespan * 1e3, f"{err:.1e}"]
        )
    print()
    print(format_table(
        ["interior target", "eliminated", "interface size",
         "condense sim ms", "solve error"],
        rows,
        title="Condensing the interior onto the interface",
        float_fmt="{:.2f}",
    ))
    print(
        "\nThe interface system is dense and small — exactly what a dense"
        "\nsolver (or the paper's GPU) wants; the interior panels are kept"
        "\nfor the back-substitution."
    )


if __name__ == "__main__":
    main()
