#!/usr/bin/env python
"""Multi-worker scaling — the paper's Section VI-C configuration study.

Schedules a paper-scale workload (the audikw_1 geometry) over different
worker pools: 1-4 CPU threads, and 1-2 GPUs each paired with a host
thread ("our approach uses the same number of threads as the number of
available GPUs").  Reports makespans, speedups over the serial host run,
and worker utilization — the 2-CPU/2-GPU row reproduces the paper's
10-25x headline.

Run:  python examples/multigpu_scaling.py
"""

import numpy as np

from repro.analysis import format_table
from repro.autotune import train_default_classifier
from repro.gpu import tesla_t10_model
from repro.parallel import list_schedule, make_worker_pool
from repro.policies import ModelHybrid, make_policy
from repro.workload import paper_workload


def main() -> None:
    model = tesla_t10_model()
    sf = paper_workload("audikw_1")
    print(
        f"workload: audikw_1 geometry, n={sf.n}, "
        f"{sf.n_supernodes} supernodes, {sf.total_flops():.3g} flops"
    )

    mh = ModelHybrid(train_default_classifier(model))
    p1 = make_policy("P1")

    configs = [
        ("1 CPU (serial host)", 1, 0, p1),
        ("2 CPU threads", 2, 0, p1),
        ("4 CPU threads", 4, 0, p1),
        ("1 CPU + 1 GPU, model hybrid", 1, 1, mh),
        ("2 CPU + 2 GPU, model hybrid", 2, 2, mh),
    ]
    serial = None
    rows = []
    for label, n_cpus, n_gpus, pol in configs:
        pool = make_worker_pool(n_cpus, n_gpus, model=model)
        gang = np.inf if n_cpus == 1 else 5e9
        res = list_schedule(sf, pol, pool, gang_threshold=gang)
        if serial is None:
            serial = res.makespan
        rows.append(
            [label, res.makespan, serial / res.makespan,
             100 * res.utilization()]
        )
    print()
    print(format_table(
        ["configuration", "makespan (s)", "speedup", "utilization %"],
        rows, title="Scaling on the simulated node", float_fmt="{:.2f}",
    ))
    print(
        "\npaper Table VII (audikw_1): 4-thread 2.96x, model hybrid 6.73x,"
        "\n2 CPU + 2 GPU (copy-optimized) 14.14x"
    )


if __name__ == "__main__":
    main()
