#!/usr/bin/env python
"""Mixed precision and iterative refinement — the paper's Section III-B.

WSMP computes in double precision; the T10's double throughput is 8x
below single, so the paper runs CUBLAS in float32 and notes "the lost
accuracy could be readily regained by one or two steps of iterative
refinement using double precision sparse matrix-vector multiplication."

This example factors one matrix three ways — pure fp64 host (P1), fp32
GPU offload (P3), and the dp-GPU extension — and prints the residual
trace of refinement for each, plus the speed/accuracy trade the paper
describes.

Run:  python examples/mixed_precision_refinement.py
"""

import numpy as np

from repro import SparseCholeskySolver, grid_laplacian_3d
from repro.analysis import format_table
from repro.gpu import SimulatedNode, tesla_t10_model


def run(a, b, x_true, policy, node=None):
    solver = SparseCholeskySolver(a, ordering="nd", policy=policy, node=node)
    solver.factorize()
    res = solver.solve_refined(b, tol=1e-12)
    err = np.abs(res.x - x_true).max() / np.abs(x_true).max()
    return solver, res, err


def main() -> None:
    a = grid_laplacian_3d(12, 12, 12)
    rng = np.random.default_rng(3)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)

    rows = []
    traces = {}
    for label, policy, node in (
        ("fp64 host (P1)", "P1", None),
        ("fp32 GPU (P3)", "P3", None),
        (
            "fp64 GPU (dp extension)",
            "P3",
            SimulatedNode(model=tesla_t10_model().with_precision("dp")),
        ),
    ):
        solver, res, err = run(a, b, x_true, policy, node)
        rows.append(
            [label, f"{res.initial_residual:.1e}", res.iterations,
             f"{res.final_residual:.1e}", f"{err:.1e}",
             solver.stats.simulated_seconds * 1e3]
        )
        traces[label] = res.residual_norms
    print(format_table(
        ["configuration", "initial resid", "iters", "final resid",
         "fwd error", "sim ms"],
        rows,
        title="Mixed precision + iterative refinement",
        float_fmt="{:.2f}",
    ))
    print("\nrefinement traces (scaled residual per step):")
    for label, trace in traces.items():
        print(f"  {label}: " + " -> ".join(f"{r:.1e}" for r in trace))
    print(
        "\nfp32 offload loses ~8 digits in the factor; one or two"
        "\nrefinement steps recover full double-precision accuracy,"
        "\nexactly as the paper reports."
    )


if __name__ == "__main__":
    main()
