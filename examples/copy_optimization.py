#!/usr/bin/env python
"""Copy optimization — device-resident update matrices (§VI-C).

The paper found that eliminating redundant transfers makes the all-GPU
policy "better ... for even moderately sized frontal matrices."  This
example runs three variants of the same factorization and shows the
mechanism: update matrices that stay on the device never cross PCIe,
and the fp32 error they accumulate across generations is still fixed by
one refinement step.

Run:  python examples/copy_optimization.py
"""

import numpy as np

from repro import grid_laplacian_3d, symbolic_factorize
from repro.analysis import format_table
from repro.gpu import SimulatedNode
from repro.multifrontal import (
    factorize_numeric,
    factorize_resident,
    flops_placement,
    iterative_refinement,
)
from repro.policies import IdealHybrid, make_policy


def main() -> None:
    a = grid_laplacian_3d(12, 12, 12)
    sf = symbolic_factorize(a, ordering="nd")
    print(f"problem: n={a.n_rows}, {sf.n_supernodes} supernodes, "
          f"{sf.total_flops():.3g} flops\n")

    rows = []
    b = np.ones(a.n_rows)

    # plain P4: every front round-trips the PCIe bus
    nf_p4 = factorize_numeric(a, sf, make_policy("P4"), node=SimulatedNode())
    r = iterative_refinement(a, nf_p4, b)
    rows.append(["plain P4 (round trips)", nf_p4.makespan * 1e3,
                 f"{r.initial_residual:.1e}", r.iterations])

    # hybrid for reference
    node = SimulatedNode()
    nf_h = factorize_numeric(a, sf, IdealHybrid(node.model), node=node)
    r = iterative_refinement(a, nf_h, b)
    rows.append(["ideal hybrid", nf_h.makespan * 1e3,
                 f"{r.initial_residual:.1e}", r.iterations])

    # device-resident: updates stay on the GPU between generations
    nf_res, stats = factorize_resident(
        a, sf, place_on_device=flops_placement(1e5)
    )
    r = iterative_refinement(a, nf_res, b)
    rows.append(["device-resident P4", nf_res.makespan * 1e3,
                 f"{r.initial_residual:.1e}", r.iterations])

    print(format_table(
        ["variant", "sim ms", "factor residual", "refine iters"],
        rows, title="Copy optimization on one factorization",
        float_fmt="{:.2f}",
    ))
    print(
        f"\nresidency: {stats.n_device_supernodes} supernodes on device, "
        f"{stats.resident_reuse_bytes / 2**20:.1f} MiB of updates never "
        f"crossed PCIe\n(PCIe traffic: {stats.h2d_bytes / 2**20:.1f} MiB up, "
        f"{stats.d2h_bytes / 2**20:.1f} MiB down, {stats.n_spills} spills)"
    )


if __name__ == "__main__":
    main()
