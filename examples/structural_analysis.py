#!/usr/bin/env python
"""Structural-analysis workflow — the workload class the paper targets.

The paper's matrices come from 3-D structural analysis (automotive
modeling, metal forming): vector-valued problems with 3 degrees of
freedom per node.  This example builds such a problem, shows why the
fill-reducing ordering matters (nested dissection vs minimum degree vs
band ordering), and factors it under each policy to expose the
small-problem regime of the paper's Figure 11: offloading everything to
the GPU *loses* here, while the hybrid picks the right device per call.

Run:  python examples/structural_analysis.py
"""

import numpy as np

from repro import SparseCholeskySolver, elasticity_3d
from repro.analysis import format_table


def main() -> None:
    # 8^3 nodes x 3 dof: a small "metal forming" model
    a = elasticity_3d(8, 8, 8, coupling=0.3)
    print(f"elasticity model: n={a.n_rows} (3 dof/node), nnz={a.nnz}\n")

    # --- orderings -----------------------------------------------------
    rows = []
    for ordering in ("natural", "rcm", "amd", "nd"):
        s = SparseCholeskySolver(a, ordering=ordering, policy="P1").analyze()
        sym = s.symbolic
        rows.append(
            [ordering, sym.nnz_factor, f"{sym.total_flops():.3g}",
             sym.n_supernodes, int(sym.mk_pairs()[:, 1].max())]
        )
    print(format_table(
        ["ordering", "nnz(L)", "flops", "supernodes", "largest k"],
        rows, title="Fill-reducing ordering comparison",
    ))

    # --- policies ------------------------------------------------------
    rng = np.random.default_rng(1)
    x_true = rng.normal(size=a.n_rows)
    b = a.matvec(x_true)
    rows = []
    base_time = None
    for policy in ("P1", "P2", "P3", "P4", "baseline", "ideal"):
        s = SparseCholeskySolver(a, ordering="nd", policy=policy)
        s.factorize()
        t = s.stats.simulated_seconds
        if base_time is None:
            base_time = t
        res = s.solve_refined(b)
        err = np.abs(res.x - x_true).max() / np.abs(x_true).max()
        rows.append(
            [policy, t * 1e3, base_time / t, res.iterations, f"{err:.1e}"]
        )
    print()
    print(format_table(
        ["policy", "sim ms", "speedup", "refine iters", "fwd error"],
        rows,
        title="Policies on a small problem (hybrid wins; pure GPU loses)",
        float_fmt="{:.2f}",
    ))
    print(
        "\nNote: small fronts make P2-P4 slower than the host here — exactly"
        "\nthe regime the paper's hybrid scheduling exists for.  The ideal"
        "\nhybrid never loses; the flop-threshold baseline can mispick on"
        "\nproblems this small (its thresholds were fit at paper scale)."
    )


if __name__ == "__main__":
    main()
